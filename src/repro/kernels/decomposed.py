"""The decomposed softmax sub-layer kernels: LS, IR, and GS (Section 3.2).

Softmax decomposition splits each row vector of the attention matrix
into ``N_sv = L / T`` sub-vectors of size ``T`` and rewrites safe
softmax (Eq. 2) as:

- **Local Softmax (LS)** — per sub-vector ``k``: ``m'_k = max_i x_{k,i}``,
  ``d'_k = sum_i exp(x_{k,i} - m'_k)``, and the locally normalised
  values ``x'_{k,i} = exp(x_{k,i} - m'_k) / d'_k``;
- **Inter-sub-vector Reduction (IR)** — per row: ``m = max_k m'_k``,
  ``d = sum_k exp(m'_k - m) d'_k``, and the reconstruction factor
  ``r'_k = exp(m'_k - m) d'_k / d``;
- **Global Scaling (GS)** — ``y_{k,i} = x'_{k,i} * r'_k``.

LS and GS stream square tiles with no cross-tile dependency, matching
the MatMul data access pattern — which is what makes the fusion of
Section 3.3 possible.  The pure-math forms live here so they can be
tested against the monolithic softmax and reused by the fused kernels.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.common.dtypes import DType
from repro.common.errors import ShapeError
from repro.common.validation import require_positive
from repro.gpu.costmodel import (
    KernelLaunch,
    MLP_STREAMING,
    WorkloadShape,
)
from repro.gpu.occupancy import TBResources
from repro.gpu.specs import GPUSpec
from repro.kernels.base import CATEGORY, Kernel, ceil_div
from repro.kernels.elementwise import _TB_ELEMENTS

#: Bytes of one intermediate scalar (m', d', r' are kept in fp32).
INTERMEDIATE_BYTES = 4

#: Rows a 256-thread LS/IR thread block processes (one row per warp).
_ROWS_PER_TB = 8


def local_softmax(x: np.ndarray, t: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pure math of the LS sub-layer along the last axis.

    Returns ``(x_prime, m_prime, d_prime)`` where the last axis of
    ``x`` (length ``L``) is viewed as ``N_sv`` sub-vectors of size
    ``t``; ``m_prime``/``d_prime`` have trailing shape ``(N_sv,)`` and
    ``x_prime`` keeps the input shape.  Fully masked (all ``-inf``)
    sub-vectors yield ``x' = 0`` and ``d' = 0``.
    """
    x = np.asarray(x, dtype=np.float32)
    length = x.shape[-1]
    if length % t != 0:
        raise ShapeError(f"row length {length} not divisible by T={t}")
    sub = x.reshape(x.shape[:-1] + (length // t, t))
    m_prime = np.max(sub, axis=-1)
    finite_m = np.where(np.isfinite(m_prime), m_prime, 0.0)
    e = np.exp(sub - finite_m[..., None])
    e = np.where(np.isfinite(sub), e, 0.0)
    d_prime = np.sum(e, axis=-1)
    x_prime = np.divide(
        e, d_prime[..., None], out=np.zeros_like(e), where=d_prime[..., None] > 0
    )
    return x_prime.reshape(x.shape), m_prime, d_prime


def inter_reduction(m_prime: np.ndarray, d_prime: np.ndarray) -> np.ndarray:
    """Pure math of the IR sub-layer: reconstruction factors ``r'``.

    ``m_prime`` and ``d_prime`` carry sub-vector statistics on the last
    axis; returns ``r'`` of the same shape, satisfying
    ``y = x' * r'`` (Eq. 2).  Rows whose every sub-vector is masked
    (``d' = 0`` everywhere) produce ``r' = 0``.
    """
    m_prime = np.asarray(m_prime, dtype=np.float32)
    d_prime = np.asarray(d_prime, dtype=np.float32)
    if m_prime.shape != d_prime.shape:
        raise ShapeError(
            f"m'/d' shape mismatch: {m_prime.shape} vs {d_prime.shape}"
        )
    m = np.max(m_prime, axis=-1, keepdims=True)
    finite_m = np.where(np.isfinite(m), m, 0.0)
    scale = np.where(d_prime > 0, np.exp(m_prime - finite_m), 0.0)
    d = np.sum(scale * d_prime, axis=-1, keepdims=True)
    return np.divide(
        scale * d_prime, d, out=np.zeros_like(d_prime), where=d > 0
    )


def global_scaling(x_prime: np.ndarray, r_prime: np.ndarray, t: int) -> np.ndarray:
    """Pure math of the GS sub-layer: ``y_{k,i} = x'_{k,i} * r'_k``."""
    x_prime = np.asarray(x_prime, dtype=np.float32)
    length = x_prime.shape[-1]
    if length % t != 0:
        raise ShapeError(f"row length {length} not divisible by T={t}")
    n_sv = length // t
    if r_prime.shape[-1] != n_sv:
        raise ShapeError(
            f"r' has {r_prime.shape[-1]} sub-vectors, expected {n_sv}"
        )
    sub = x_prime.reshape(x_prime.shape[:-1] + (n_sv, t))
    scaled = sub * np.asarray(r_prime, dtype=np.float32)[..., None]
    return scaled.reshape(x_prime.shape)


class LocalSoftmaxKernel(Kernel):
    """LS: tile-streaming local softmax over sub-vectors.

    ``num_subvectors`` is the total sub-vector count across all rows,
    heads and batch items.  For dense attention it is
    ``rows * L / T``; for block-sparse attention it is
    ``nnz_blocks * block_size`` (only nonzero sub-vectors exist, which
    is exactly the finer-grain allocation win of Section 5.1).
    """

    category = CATEGORY.SOFTMAX

    def __init__(
        self,
        num_subvectors: int,
        t: int,
        *,
        dtype: DType = DType.FP16,
        name: str = "local_softmax",
    ) -> None:
        require_positive("num_subvectors", num_subvectors)
        require_positive("T", t)
        self.num_subvectors = num_subvectors
        self.t = t
        self.dtype = dtype
        self.name = name

    @property
    def elements(self) -> int:
        """Attention-matrix elements this launch touches."""
        return self.num_subvectors * self.t

    def launch_spec(self, spec: GPUSpec) -> KernelLaunch:
        elem_bytes = self.dtype.nbytes
        stats_bytes = 2 * self.num_subvectors * INTERMEDIATE_BYTES
        grid = ceil_div(self.num_subvectors, _ROWS_PER_TB)
        return KernelLaunch(
            name=self.name,
            category=self.category,
            tb=TBResources(
                threads=256,
                # One sub-vector per warp in fp32 plus per-warp partials.
                shared_mem=_ROWS_PER_TB * self.t * 4,
            ),
            shape=WorkloadShape(grid=grid),
            dram_read_bytes=self.elements * elem_bytes,
            dram_write_bytes=self.elements * elem_bytes + stats_bytes,
            cuda_flops=5.0 * self.elements,
            bytes_in_flight_per_warp=MLP_STREAMING,
        )

    def compute(self, x: np.ndarray):
        """Apply LS along the last axis; returns ``(x', m', d')``."""
        x = self.dtype.quantize(x)
        x_prime, m_prime, d_prime = local_softmax(x, self.t)
        return self.dtype.quantize(x_prime), m_prime, d_prime


class InterReductionKernel(Kernel):
    """IR: reduce per-sub-vector statistics into reconstruction factors.

    Sweeps only the intermediate values — ``1/T`` the size of the
    attention matrix — which is why its share of the decomposed softmax
    stays below 12.5% (Fig. 5) and below ~3% of the original softmax
    time once LS and GS are fused away (Section 5.1).
    """

    category = CATEGORY.SOFTMAX

    def __init__(
        self,
        rows: int,
        *,
        mean_subvectors: float,
        max_subvectors: Optional[float] = None,
        name: str = "inter_reduction",
    ) -> None:
        require_positive("rows", rows)
        require_positive("mean_subvectors", mean_subvectors)
        self.rows = rows
        self.mean_subvectors = mean_subvectors
        self.max_subvectors = max_subvectors or mean_subvectors
        self.name = name

    @property
    def total_stats(self) -> float:
        """Total (m', d') pairs across all rows."""
        return self.rows * self.mean_subvectors

    def launch_spec(self, spec: GPUSpec) -> KernelLaunch:
        read = 2 * self.total_stats * INTERMEDIATE_BYTES
        write = self.total_stats * INTERMEDIATE_BYTES
        return KernelLaunch(
            name=self.name,
            category=self.category,
            tb=TBResources(threads=256),
            shape=WorkloadShape(
                grid=ceil_div(self.rows, _ROWS_PER_TB),
                mean_work=self.mean_subvectors,
                max_work=self.max_subvectors,
            ),
            dram_read_bytes=read,
            dram_write_bytes=write,
            cuda_flops=6.0 * self.total_stats,
            # A row's N_sv statistics fit in registers, so IR is a
            # single streaming pass (read m'/d', write r') with no
            # barrier-phased row sweeps — unlike the monolithic softmax.
            bytes_in_flight_per_warp=MLP_STREAMING,
        )

    def compute(self, m_prime: np.ndarray, d_prime: np.ndarray) -> np.ndarray:
        """Compute ``r'`` along the last axis (kept in fp32)."""
        return inter_reduction(m_prime, d_prime)


class GlobalScaleKernel(Kernel):
    """GS: element-wise scaling of ``x'`` by the broadcast ``r'``.

    A pure streaming kernel — each ``r'`` is reused across all ``T``
    elements of its sub-vector, so the extra read traffic is ``1/T`` of
    the attention matrix (Section 3.2).
    """

    category = CATEGORY.SOFTMAX

    def __init__(
        self,
        num_subvectors: int,
        t: int,
        *,
        dtype: DType = DType.FP16,
        name: str = "global_scaling",
    ) -> None:
        require_positive("num_subvectors", num_subvectors)
        require_positive("T", t)
        self.num_subvectors = num_subvectors
        self.t = t
        self.dtype = dtype
        self.name = name

    @property
    def elements(self) -> int:
        """Attention-matrix elements this launch touches."""
        return self.num_subvectors * self.t

    def launch_spec(self, spec: GPUSpec) -> KernelLaunch:
        elem_bytes = self.dtype.nbytes
        return KernelLaunch(
            name=self.name,
            category=self.category,
            tb=TBResources(threads=256),
            shape=WorkloadShape(grid=ceil_div(self.elements, _TB_ELEMENTS)),
            dram_read_bytes=self.elements * elem_bytes
            + self.num_subvectors * INTERMEDIATE_BYTES,
            dram_write_bytes=self.elements * elem_bytes,
            cuda_flops=1.0 * self.elements,
            bytes_in_flight_per_warp=MLP_STREAMING,
        )

    def compute(self, x_prime: np.ndarray, r_prime: np.ndarray) -> np.ndarray:
        """Scale ``x'`` (fp16 storage) by ``r'`` along the last axis."""
        x_prime = self.dtype.quantize(x_prime)
        return self.dtype.quantize(global_scaling(x_prime, r_prime, self.t))


def verification_oracles():
    """Oracle running the LS/IR/GS *kernel* pipeline (with its fp16
    storage round-trips) against the monolithic row-softmax kernel."""
    from repro.common.dtypes import DType
    from repro.kernels.softmax import RowSoftmaxKernel
    from repro.verify.contracts import FP16_STORAGE, FP32_MATH
    from repro.verify.invariants import SOFTMAX_INVARIANTS
    from repro.verify.registry import OracleSpec

    def run(case):
        x = case.arrays["x"]
        t = case.params["t"]
        rows = x.shape[0] * x.shape[1]
        length = x.shape[-1]
        num_subvectors = rows * (length // t)
        ls = LocalSoftmaxKernel(num_subvectors, t, dtype=case.dtype)
        ir = InterReductionKernel(rows, mean_subvectors=length / t)
        gs = GlobalScaleKernel(num_subvectors, t, dtype=case.dtype)

        def pipeline(arr):
            x_prime, m_prime, d_prime = ls.compute(arr)
            r_prime = ir.compute(m_prime, d_prime)
            return gs.compute(x_prime, r_prime)

        reference = RowSoftmaxKernel(rows=rows, length=length,
                                     dtype=case.dtype)
        x_prime, m_prime, d_prime = ls.compute(x)
        r_prime = ir.compute(m_prime, d_prime)
        actual = gs.compute(x_prime, r_prime)
        return {
            "actual": actual,
            "expected": reference.compute(x),
            "probs": actual,
            "scores": case.dtype.quantize(x),
            "r_prime": r_prime,
            "softmax_fn": pipeline,
            "x": np.asarray(x, dtype=np.float32),
        }

    return [
        OracleSpec(
            name="softmax.decomposed_kernel_pipeline",
            family="softmax",
            run=run,
            contracts={DType.FP32: FP32_MATH, DType.FP16: FP16_STORAGE},
            invariants=SOFTMAX_INVARIANTS + ("reconstruction_factors",),
            description="LS/IR/GS kernel chain vs monolithic softmax kernel",
        ),
    ]
