"""Approximate softmax kernels: LUT exp, block-precision, division-free.

The paper's SDF recomposition accelerates *exact* softmax by
restructuring its passes; this module implements the companion axis
the related work opens — trading a bounded amount of accuracy for
speed.  Three designs from PAPERS.md:

- :class:`ApproxRowSoftmaxKernel` — Vasyltsov & Chang's LUT/polynomial
  exponential: split ``z·log2(e)`` into integer and fractional parts,
  look ``2^f`` up in a ``2^table_bits``-entry table (optionally with a
  first-order correction), and apply the integer part as an exponent
  shift.  Replaces the SFU exponential with a shared-memory lookup.
- :class:`BAPSSoftmaxKernel` — block-wise low-precision accumulation:
  probabilities are quantised to fp16 and summed *in fp16* within
  fixed-size blocks, each block carrying its own local max; a per-block
  fp32 rescale recombines the blocks exactly.  The fp16 row staging
  halves shared memory, raising occupancy on long rows.
- :class:`FlashDAttentionKernel` — FLASH-D: the FlashAttention
  recurrence rewritten so the accumulator stays *normalised* at every
  step.  One reciprocal per row per K/V tile folds the division into
  the existing rescale multiply, deleting the per-element division
  epilogue.

Each kernel prices its own launch through the existing roofline cost
model and reports instruction/traffic counters via :meth:`counters`.
Their fuzz oracles carry :class:`~repro.verify.profiles.
ErrorProfileContract` budgets instead of exact-match contracts — the
harness *measures* each kernel's distance from the float64 reference
and fails only when a declared budget is exceeded.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.common.dtypes import DType
from repro.common.errors import ConfigError, ShapeError
from repro.common.validation import require_positive
from repro.gpu.costmodel import KernelLaunch
from repro.gpu.occupancy import TBResources
from repro.gpu.specs import GPUSpec
from repro.kernels.flash import TILE_KV, TILE_Q, FlashAttentionKernel
from repro.kernels.softmax import RowSoftmaxKernel, _row_threads

_LOG2E = 1.4426950408889634

#: Exponent floor for the integer part of ``z*log2(e)``; anything this
#: small underflows every storage format, so clamping keeps the int
#: conversion safe without changing any output.
_MIN_EXPONENT = -16384


def lut_exp_table(table_bits: int, degree: int) -> np.ndarray:
    """The ``2^f`` lookup table for ``f`` in ``[0, 1)``.

    Degree 0 stores midpoint samples (nearest-value lookup); degree 1
    stores left-edge samples, linearly interpolated to the right edge.
    """
    size = 1 << table_bits
    grid = np.arange(size, dtype=np.float64) / size
    if degree == 0:
        return np.exp2(grid + 0.5 / size)
    return np.exp2(grid)


def lut_exp(z: np.ndarray, table_bits: int = 8,
            degree: int = 1) -> np.ndarray:
    """Approximate ``exp(z)`` for ``z <= 0`` via table lookup.

    ``-inf`` entries (masked positions) map to exactly 0, matching the
    repo-wide masking contract.  Table math runs in fp32, mirroring a
    kernel that holds the table in shared memory as fp32 words.
    """
    z = np.asarray(z, dtype=np.float32)
    finite = np.isfinite(z)
    t = np.where(finite, z, 0.0).astype(np.float32) * np.float32(_LOG2E)
    n = np.maximum(np.floor(t), np.float32(_MIN_EXPONENT))
    size = 1 << table_bits
    # Saturating index: inputs below the exponent floor land on the
    # table's first entry (the result underflows to zero via ldexp
    # regardless), and fp32 rounding at the top lands on the last.
    pos = (t - n) * np.float32(size)
    idx = np.clip(pos.astype(np.int64), 0, size - 1)
    table = lut_exp_table(table_bits, degree).astype(np.float32)
    if degree == 0:
        approx = table[idx]
    else:
        step = np.float32(2.0 ** (1.0 / size))
        frac = np.clip(pos - idx.astype(np.float32), 0.0, 1.0)
        approx = table[idx] * (np.float32(1.0) + frac * (step - 1.0))
    e = np.ldexp(approx, n.astype(np.int64))
    return np.where(finite, e, np.float32(0.0))


class ApproxRowSoftmaxKernel(RowSoftmaxKernel):
    """Row softmax with the exponential replaced by a LUT (+ linear).

    The LUT collapses the exponent-sum pass's SFU work into one
    shared-memory lookup and at most one fused multiply-add, letting
    the two remaining passes pipeline like the online-normaliser kernel
    (both touch DRAM, duty 0.8) while issuing fewer CUDA-core slots per
    element.  ``table_bits`` sets the table resolution; ``degree`` 0 is
    a pure midpoint lookup, 1 adds first-order interpolation (the
    "polynomial" refinement, ~2\\ :sup:`-2·bits` relative error instead
    of ~2\\ :sup:`-bits`).
    """

    _LUT_PHASE_DUTY = 0.8

    def __init__(self, *args, table_bits: int = 8, degree: int = 1,
                 **kwargs) -> None:
        kwargs.setdefault("name", "lut_softmax")
        super().__init__(*args, **kwargs)
        require_positive("table_bits", table_bits)
        if table_bits > 16:
            raise ConfigError(
                f"table_bits={table_bits}: a >64K-entry table no longer "
                f"fits shared memory alongside the row"
            )
        if degree not in (0, 1):
            raise ConfigError(f"degree must be 0 or 1, got {degree}")
        self.table_bits = table_bits
        self.degree = degree

    @property
    def table_bytes(self) -> int:
        """Shared-memory footprint of the fp32 lookup table."""
        return (1 << self.table_bits) * 4

    def launch_spec(self, spec: GPUSpec) -> KernelLaunch:
        base = super().launch_spec(spec)
        shared = self.worst_case_length * 4 + self.table_bytes
        return replace(
            base,
            tb=TBResources(
                threads=_row_threads(self.worst_case_length, spec),
                shared_mem=shared,
            ),
            # Lookup + FMA + accumulate replace the 5-op exp chain; the
            # fused max/sum sweep raises the duty like online softmax.
            cuda_flops=3.0 * self.total_elements,
            issue_fraction=self._LUT_PHASE_DUTY * self.density,
        )

    def counters(self) -> "dict[str, float]":
        """Instruction/traffic counters for the approx-sweep report."""
        elements = self.total_elements
        return {
            "exp_ops": 0.0,
            "lut_lookups": elements,
            "mul_ops": (2.0 if self.degree else 1.0) * elements,
            # One reciprocal per row; the normalise pass multiplies.
            "div_ops": float(self.rows),
            "table_bytes": float(self.table_bytes),
            "dram_bytes": 2.0 * elements * self.dtype.nbytes,
        }

    def compute(self, x: np.ndarray) -> np.ndarray:
        """LUT softmax along the last axis with storage semantics."""
        if x.shape[-1] != self.length:
            raise ShapeError(
                f"{self.name}: row length {x.shape[-1]}, "
                f"expected {self.length}"
            )
        x = self.dtype.quantize(x)
        m = np.max(x, axis=-1, keepdims=True)
        finite_m = np.where(np.isfinite(m), m, 0.0)
        e = lut_exp(x - finite_m, self.table_bits, self.degree)
        d = np.sum(e, axis=-1, keepdims=True, dtype=np.float32)
        probs = np.divide(e, d, out=np.zeros_like(e), where=d > 0)
        return self.dtype.quantize(probs)


class BAPSSoftmaxKernel(RowSoftmaxKernel):
    """Block-wise low-precision accumulation with per-block rescale.

    Each row is cut into ``block_size`` chunks.  Within a chunk the
    exponentials are quantised to fp16 and accumulated *in fp16* — the
    chunk's local max keeps them in ``(0, 1]`` where fp16 is dense —
    and the chunk sums are recombined in fp32 with per-block
    ``exp(m'_k - m)`` rescales, exactly the SDF inter-reduction shape.
    The fp16 row staging halves the shared-memory footprint, which
    raises occupancy (and therefore achieved bandwidth) on rows long
    enough to be shared-memory limited.
    """

    def __init__(self, *args, block_size: int = 32, **kwargs) -> None:
        kwargs.setdefault("name", "baps_softmax")
        super().__init__(*args, **kwargs)
        require_positive("block_size", block_size)
        self.block_size = block_size

    @property
    def num_blocks(self) -> int:
        """Blocks per row (ragged tail padded with ``-inf``)."""
        return -(-self.length // self.block_size)

    def launch_spec(self, spec: GPUSpec) -> KernelLaunch:
        base = super().launch_spec(spec)
        # fp16 row staging plus per-block (m', d') statistics in fp32.
        shared = self.worst_case_length * 2 + self.num_blocks * 8
        return replace(
            base,
            tb=TBResources(
                threads=_row_threads(self.worst_case_length, spec),
                shared_mem=shared,
            ),
            # The extra per-block rescale multiply rides on the
            # normalise pass: 6 ops/element instead of 5.
            cuda_flops=6.0 * self.total_elements,
        )

    def counters(self) -> "dict[str, float]":
        elements = self.total_elements
        blocks = self.rows * self.num_blocks
        return {
            "exp_ops": elements + blocks,  # per-element + per-block rescale
            "lut_lookups": 0.0,
            "mul_ops": 2.0 * elements,
            # One reciprocal per row; block combines are multiplies.
            "div_ops": float(self.rows),
            "fp16_accumulations": elements,
            "dram_bytes": 2.0 * elements * self.dtype.nbytes,
        }

    def compute(self, x: np.ndarray) -> np.ndarray:
        """Blocked fp16-accumulation softmax along the last axis."""
        if x.shape[-1] != self.length:
            raise ShapeError(
                f"{self.name}: row length {x.shape[-1]}, "
                f"expected {self.length}"
            )
        x = np.asarray(self.dtype.quantize(x), dtype=np.float32)
        bs = self.block_size
        pad = self.num_blocks * bs - self.length
        if pad:
            x = np.concatenate(
                [x, np.full(x.shape[:-1] + (pad,), -np.inf,
                            dtype=np.float32)],
                axis=-1,
            )
        sub = x.reshape(x.shape[:-1] + (self.num_blocks, bs))
        m_blk = np.max(sub, axis=-1)
        finite_blk = np.where(np.isfinite(m_blk), m_blk, 0.0)
        p = np.where(np.isfinite(sub),
                     np.exp(sub - finite_blk[..., None]), 0.0)
        p16 = p.astype(np.float16)
        # The block accumulator itself is fp16: every partial sum
        # rounds to half precision, which is the error source the
        # per-block rescale bounds to block_size elements.
        d_blk = np.zeros(m_blk.shape, dtype=np.float16)
        for j in range(bs):
            d_blk = (d_blk + p16[..., j]).astype(np.float16)
        m = np.max(m_blk, axis=-1, keepdims=True)
        finite_m = np.where(np.isfinite(m), m, 0.0)
        scale = np.where(np.isfinite(m_blk),
                         np.exp(m_blk - finite_m), 0.0).astype(np.float32)
        d_row = np.sum(scale * d_blk.astype(np.float32), axis=-1,
                       keepdims=True)
        factor = np.divide(scale, d_row, out=np.zeros_like(scale),
                           where=d_row > 0)
        probs = p16.astype(np.float32) * factor[..., None]
        probs = probs.reshape(x.shape)
        if pad:
            probs = probs[..., :self.length]
        return self.dtype.quantize(probs)


class FlashDAttentionKernel(FlashAttentionKernel):
    """FLASH-D: FlashAttention with the division hidden in the rescale.

    The stock recurrence rescales the accumulator by ``exp(m - m_new)``
    per K/V tile and divides every output element by ``l`` in the
    epilogue.  FLASH-D keeps the accumulator normalised instead:

        l_new = l·corr + rowsum(P_j)
        O     = O · (l·corr / l_new) + (P_j / l_new) @ V_j

    One reciprocal of ``l_new`` per row per tile feeds both rescales as
    multiplies, so the per-element division pipeline disappears from
    the launch — fewer CUDA/SFU issue slots per attention element — and
    the epilogue is a plain store.
    """

    #: Stock flash spends ~12 CUDA-flop-equivalents per score element
    #: on the in-mainloop softmax; folding the division into the
    #: rescale multiply returns the division pipeline's issue slots.
    _SOFTMAX_FLOPS = 10.0

    def __init__(self, *args, **kwargs) -> None:
        kwargs.setdefault("name", "flashd_attention")
        super().__init__(*args, **kwargs)

    def launch_spec(self, spec: GPUSpec) -> KernelLaunch:
        base = super().launch_spec(spec)
        rescale = self.d_head / float(TILE_KV)
        return replace(
            base,
            cuda_flops=(self._SOFTMAX_FLOPS + rescale)
            * self._score_elements(),
        )

    def counters(self) -> "dict[str, float]":
        rows = self.batch_heads * self.seq_len
        kv_tiles = -(-self.seq_len // TILE_KV)
        scores = self._score_elements()
        return {
            "exp_ops": scores + rows * kv_tiles,
            "lut_lookups": 0.0,
            "mul_ops": scores + 2.0 * rows * kv_tiles * self.d_head,
            # One reciprocal per row per K/V tile — versus the stock
            # epilogue's d_head divisions per row.
            "div_ops": float(rows * kv_tiles),
            "dram_bytes": 4.0 * rows * self.d_head * self.dtype.nbytes,
        }

    def _forward_tiles(
        self, q_tiles: np.ndarray, starts: np.ndarray,
        k: np.ndarray, v: np.ndarray,
    ) -> np.ndarray:
        """The normalised-accumulator recurrence; no final division."""
        bh, nt, rows, d = q_tiles.shape
        length = self.seq_len
        scale = np.float32(self.scale)
        m = np.full((bh, nt, rows), -np.inf, dtype=np.float32)
        l = np.zeros((bh, nt, rows), dtype=np.float32)
        acc = np.zeros((bh, nt, rows, d), dtype=np.float32)
        qi = (starts[:, None] + np.arange(rows)[None, :])[:, :, None]
        last_active = int(starts[-1]) + rows - 1
        for k0 in range(0, length, TILE_KV):
            k1 = min(k0 + TILE_KV, length)
            if self.causal and k0 > last_active:
                break  # above every tile's diagonal
            s = np.matmul(q_tiles, np.swapaxes(k[:, None, k0:k1], 2, 3),
                          dtype=np.float32) * scale
            if self.causal:
                kj = np.arange(k0, k1)[None, None, :]
                s = np.where(kj > qi, -np.inf, s)
            tile_max = s.max(axis=-1)
            m_new = np.maximum(m, tile_max)
            safe_m = np.where(np.isfinite(m_new), m_new, 0.0)
            p = np.where(np.isfinite(s), np.exp(s - safe_m[..., None]), 0.0)
            correction = np.where(np.isfinite(m), np.exp(m - safe_m), 0.0)
            carried = l * correction
            l_new = carried + p.sum(axis=-1)
            inv = np.divide(
                np.float32(1.0), l_new, out=np.zeros_like(l_new),
                where=l_new > 0,
            )
            # Both rescales share the one reciprocal: the carried mass
            # shrinks to its new share, the tile lands pre-normalised.
            acc = acc * (carried * inv)[..., None] + np.matmul(
                p * inv[..., None], v[:, None, k0:k1], dtype=np.float32
            )
            l = l_new
            m = m_new
        return acc


def baseline_softmax_counters(rows: int, length: int,
                              dtype: DType) -> "dict[str, float]":
    """The monolithic kernel's counters, for side-by-side reports."""
    elements = float(rows) * length
    return {
        "exp_ops": elements,
        "lut_lookups": 0.0,
        "mul_ops": elements,
        # The normalise pass divides every element by the row sum.
        "div_ops": elements,
        "dram_bytes": 2.0 * elements * dtype.nbytes,
    }


def flash_softmax_counters(batch_heads: int, seq_len: int, d_head: int,
                           dtype: DType,
                           causal: bool = False) -> "dict[str, float]":
    """Stock FlashAttention softmax counters (the FLASH-D comparison)."""
    rows = batch_heads * seq_len
    kv_tiles = -(-seq_len // TILE_KV)
    scores = batch_heads * seq_len * seq_len / (2.0 if causal else 1.0)
    return {
        "exp_ops": scores + rows * kv_tiles,
        "lut_lookups": 0.0,
        "mul_ops": scores + rows * kv_tiles * d_head,
        # Epilogue divides every output element by l.
        "div_ops": float(rows * d_head),
        "dram_bytes": 4.0 * rows * d_head * dtype.nbytes,
    }


def verification_oracles():
    """Error-profile oracles: each approximate kernel vs the float64
    exact reference, with declared accuracy budgets per dtype."""
    from repro.verify.invariants import SOFTMAX_INVARIANTS
    from repro.verify.profiles import ErrorProfileContract
    from repro.verify.refs import exact_attention, exact_softmax
    from repro.verify.registry import OracleSpec

    # Budgets hold ~4x margin over the worst profile measured across
    # 1000 fuzz cases per dtype (seeds 0-4); see docs/approx.md for the
    # measured numbers behind each bound.
    LUT_PROFILES = {
        # Measured worst: ulp=77, mean_rel=4.4e-7, abs=2.9e-7, kl=1.4e-7.
        DType.FP32: ErrorProfileContract(
            max_ulp=512, mean_rel_err=2e-6, max_abs_err=2e-6,
            max_row_kl=1e-6),
        # fp16 output rounding dominates the LUT's own error.
        # Measured worst: ulp=1, mean_rel=2.8e-4, abs=2.5e-4, kl=3.7e-4.
        DType.FP16: ErrorProfileContract(
            max_ulp=4, mean_rel_err=1.5e-3, max_abs_err=1.5e-3,
            max_row_kl=2e-3),
    }
    BAPS_PROFILES = {
        # The fp16 accumulator flushes probabilities below the fp16
        # subnormal threshold (~6e-8) to exact zero, so relative and
        # ULP error are unbounded by design at fp32 storage — the
        # contract's teeth are the absolute and KL axes.  Measured
        # worst: mean_rel=0.17, abs=7.7e-4, kl=2.7e-3.
        DType.FP32: ErrorProfileContract(
            max_ulp=1 << 31, mean_rel_err=0.75, max_abs_err=4e-3,
            max_row_kl=1e-2),
        # Measured worst: ulp=5, mean_rel=1.6e-3, abs=7.2e-4, kl=2.3e-3.
        DType.FP16: ErrorProfileContract(
            max_ulp=16, mean_rel_err=8e-3, max_abs_err=4e-3,
            max_row_kl=1e-2),
    }
    FLASHD_PROFILES = {
        # Attention outputs: no probability axis, so no KL budget.
        # Near-zero outputs from cancellation in the value contraction
        # make the fp32 ULP axis wide.  Measured worst: ulp=3.4e5,
        # mean_rel=4.0e-5, abs=5.7e-5.
        DType.FP32: ErrorProfileContract(
            max_ulp=1 << 21, mean_rel_err=2e-4, max_abs_err=4e-4,
            max_row_kl=None),
        # Near-zero outputs sit in fp16's subnormal range, where a
        # ~1e-5 absolute error counts hundreds of ULPs.  Measured
        # worst: ulp=267 (sweep, L=256), mean_rel=2.5e-4, abs=1.8e-3.
        DType.FP16: ErrorProfileContract(
            max_ulp=1024, mean_rel_err=1e-3, max_abs_err=8e-3,
            max_row_kl=None),
    }

    def _softmax_oracle(kernel_cls, name, description, profiles,
                        invariants, **kernel_kwargs):
        def run(case):
            x = case.arrays["x"]
            rows = x.shape[0] * x.shape[1]
            length = x.shape[-1]
            kernel = kernel_cls(rows=rows, length=length,
                                dtype=case.dtype, **kernel_kwargs)
            actual = kernel.compute(x)
            return {
                "actual": actual,
                "expected": exact_softmax(case.dtype.quantize(x)),
                "probs": actual,
                "scores": case.dtype.quantize(x),
                "softmax_fn": kernel.compute,
                "x": np.asarray(x, dtype=np.float32),
            }

        return OracleSpec(
            name=name,
            family="softmax",
            run=run,
            profiles=profiles,
            invariants=invariants,
            tags=("approx",),
            description=description,
        )

    def run_flashd(case):
        q = case.arrays["q_sq"]
        bh, l_k, d = q.shape
        kernel = FlashDAttentionKernel(
            bh, l_k, d, dtype=case.dtype, scale=case.params["scale"],
            causal=case.params["causal"],
        )
        k, v = case.arrays["k"], case.arrays["v"]
        expected, _, _ = exact_attention(
            q, k, v, case.dtype, scale=case.params["scale"],
            causal=case.params["causal"],
        )
        return {"actual": kernel.compute(q, k, v), "expected": expected}

    return [
        _softmax_oracle(
            ApproxRowSoftmaxKernel,
            "softmax.lut_kernel",
            "LUT/polynomial-exp softmax vs float64 exact softmax",
            LUT_PROFILES,
            SOFTMAX_INVARIANTS,
        ),
        _softmax_oracle(
            BAPSSoftmaxKernel,
            "softmax.baps_kernel",
            "block-precision (fp16-accumulate) softmax vs float64 exact",
            BAPS_PROFILES,
            # Block boundaries break permutation equivariance by design
            # (permuting a row regroups its fp16 accumulations).
            ("row_sum_one", "masked_zeros", "finite_outputs"),
        ),
        OracleSpec(
            name="attention.flashd_vs_exact",
            family="attention",
            run=run_flashd,
            profiles=FLASHD_PROFILES,
            invariants=("finite_outputs",),
            tags=("approx",),
            description="division-free FlashAttention vs float64 exact "
                        "attention",
        ),
    ]
