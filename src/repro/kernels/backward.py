"""Softmax backward kernel (Section 6).

Computes ``dX = Y * (dY - sum(dY * Y, axis=-1, keepdims=True))`` —
Eq. 3 rearranged — from the softmax *output* only.  Like the forward
kernel it is a row-per-thread-block reduction (the per-row dot product
``sum(dY * Y)`` imposes the same strict dependency the forward max/sum
do), reading two matrices and writing one: three attention-matrix
sweeps.

Because only ``Y`` is needed, the forward pass never stores the
softmax *input* off-chip — which is exactly why softmax recomposition
(whose whole point is not storing intermediate matrices) remains valid
for the forward pass of training.
"""

from __future__ import annotations

import numpy as np

from repro.common.dtypes import DType
from repro.common.errors import ShapeError
from repro.common.validation import require_positive
from repro.core.backward import softmax_backward
from repro.gpu.costmodel import KernelLaunch, MLP_REDUCTION, WorkloadShape
from repro.gpu.occupancy import TBResources
from repro.gpu.specs import GPUSpec
from repro.kernels.base import CATEGORY, Kernel
from repro.kernels.softmax import PHASE_DUTY, _row_threads


class SoftmaxBackwardKernel(Kernel):
    """Row-wise softmax backward: ``(Y, dY) -> dX``."""

    category = CATEGORY.SOFTMAX

    def __init__(
        self,
        rows: int,
        length: int,
        *,
        dtype: DType = DType.FP16,
        name: str = "softmax_backward",
    ) -> None:
        require_positive("rows", rows)
        require_positive("length", length)
        self.rows = rows
        self.length = length
        self.dtype = dtype
        self.name = name

    def launch_spec(self, spec: GPUSpec) -> KernelLaunch:
        elements = self.rows * self.length
        elem_bytes = self.dtype.nbytes
        return KernelLaunch(
            name=self.name,
            category=self.category,
            tb=TBResources(
                threads=_row_threads(self.length, spec),
                # Y and dY rows staged in fp32 for the dot product.
                shared_mem=2 * self.length * 4,
            ),
            shape=WorkloadShape(grid=self.rows),
            dram_read_bytes=2 * elements * elem_bytes,  # Y and dY
            dram_write_bytes=elements * elem_bytes,     # dX
            cuda_flops=4.0 * elements,  # mul+acc dot, subtract, scale
            issue_fraction=PHASE_DUTY,
            bytes_in_flight_per_warp=MLP_REDUCTION,
        )

    def compute(self, y: np.ndarray, grad_y: np.ndarray) -> np.ndarray:
        """Eq. 3 along the last axis, fp16 storage."""
        if y.shape[-1] != self.length:
            raise ShapeError(
                f"{self.name}: row length {y.shape[-1]}, expected {self.length}"
            )
        y = self.dtype.quantize(y)
        grad_y = self.dtype.quantize(grad_y)
        return self.dtype.quantize(softmax_backward(y, grad_y))


class BlockSparseSoftmaxBackward(Kernel):
    """Softmax backward over a block-sparse attention matrix.

    Like the forward block-sparse softmax, the baseline implementation
    provisions one thread block per (worst-case dense) row, so the
    issue fraction collapses with density; traffic covers only the
    nonzero blocks of ``Y``, ``dY`` and ``dX``.
    """

    category = CATEGORY.SOFTMAX

    def __init__(self, layout, batch: int, *, dtype: DType = DType.FP16,
                 name: str = "bs_softmax_backward") -> None:
        require_positive("batch", batch)
        self.layout = layout
        self.batch = batch
        self.dtype = dtype
        self.name = name

    def launch_spec(self, spec: GPUSpec) -> KernelLaunch:
        layout = self.layout
        bs = layout.block_size
        rows = self.batch * layout.seq_len
        mean_nnz = layout.mean_row_nnz * bs
        elements = self.batch * layout.nnz_elements()
        elem_bytes = self.dtype.nbytes
        return KernelLaunch(
            name=self.name,
            category=self.category,
            tb=TBResources(
                threads=_row_threads(layout.row_length, spec),
                shared_mem=2 * layout.row_length * 4,
            ),
            shape=WorkloadShape(
                grid=rows,
                mean_work=mean_nnz,
                max_work=float(layout.max_row_nnz * bs),
            ),
            dram_read_bytes=2 * elements * elem_bytes,
            dram_write_bytes=elements * elem_bytes,
            cuda_flops=4.0 * elements,
            issue_fraction=PHASE_DUTY * (mean_nnz / layout.row_length),
            bytes_in_flight_per_warp=MLP_REDUCTION,
        )

    def compute(self, y, grad_y):
        """Eq. 3 across each row's nonzero blocks.

        Operands are :class:`~repro.sparse.layout.BlockSparseMatrix`;
        zero blocks contribute nothing to the per-row dot product.
        """
        from repro.sparse.layout import BlockSparseMatrix

        y_dense = y.to_dense()
        dy_dense = grad_y.to_dense()
        dx = softmax_backward(self.dtype.quantize(y_dense),
                              self.dtype.quantize(dy_dense))
        out = BlockSparseMatrix.from_dense(dx, self.layout)
        return BlockSparseMatrix(self.layout, self.dtype.quantize(out.data))
