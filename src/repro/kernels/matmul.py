"""Tiled MatMul kernel with the outer-product dataflow.

Models the CUTLASS-style GEMM the paper uses as its baseline SDA
MatMul [2]: the output matrix is divided into ``tile_m x tile_n``
tiles, one per thread block; each block streams LHS columns and RHS
rows through a double-buffered shared-memory pipeline, accumulates the
output tile in registers, and writes it once (Fig. 3(b)).

Traffic accounting follows the tiling: an operand streams from DRAM
once if it fits in (half of) the L2 cache — weights and the small
per-head Q/K/V matrices do — and once per crossing tile wave otherwise.
An optional element-wise epilogue (scale, mask, bias) adds CUDA-core
FLOPs but no traffic, which is exactly why those layers are "free" to
fuse (Section 2.3).
"""

from __future__ import annotations

import math
from typing import Callable, Optional

import numpy as np

from repro.common.dtypes import DType
from repro.common.errors import ShapeError
from repro.common.validation import require_positive
from repro.gpu.costmodel import (
    KernelLaunch,
    MLP_MATMUL,
    WorkloadShape,
)
from repro.gpu.occupancy import TBResources
from repro.gpu.specs import GPUSpec
from repro.kernels.base import CATEGORY, Kernel, ceil_div


class MatMulKernel(Kernel):
    """Batched ``(batch, m, k) @ (batch, k, n)`` on the tensor cores.

    Parameters
    ----------
    batch, m, n, k:
        Logical GEMM shape.  ``batch`` covers both the inference batch
        and the attention heads (folded together, as the SDA block
        launches all heads in one kernel).
    a_shared, b_shared:
        Operand is shared across the batch (e.g. a weight matrix);
        its bytes are counted once instead of per batch item.
    epilogue:
        Optional element-wise function applied to the fp32 accumulator
        before the output is stored (scale/mask fusion).
    epilogue_flops_per_element:
        CUDA-core FLOPs the epilogue costs per output element.
    """

    def __init__(
        self,
        batch: int,
        m: int,
        n: int,
        k: int,
        *,
        dtype: DType = DType.FP16,
        tile_m: int = 128,
        tile_n: int = 128,
        tile_k: int = 32,
        threads: int = 256,
        a_shared: bool = False,
        b_shared: bool = False,
        epilogue: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        epilogue_flops_per_element: float = 0.0,
        name: str = "matmul",
        category: str = CATEGORY.MATMUL,
    ) -> None:
        for label, value in (("batch", batch), ("m", m), ("n", n), ("k", k)):
            require_positive(label, value)
        require_positive("tile_m", tile_m)
        require_positive("tile_n", tile_n)
        require_positive("tile_k", tile_k)
        self.batch = batch
        self.m, self.n, self.k = m, n, k
        self.dtype = dtype
        self.tile_m, self.tile_n, self.tile_k = tile_m, tile_n, tile_k
        self.threads = threads
        self.a_shared = a_shared
        self.b_shared = b_shared
        self.epilogue = epilogue
        self.epilogue_flops_per_element = epilogue_flops_per_element
        self.name = name
        self.category = category

    # -- cost ----------------------------------------------------------

    @property
    def grid(self) -> int:
        """Thread blocks launched: one per output tile per batch item."""
        return self.batch * ceil_div(self.m, self.tile_m) * ceil_div(self.n, self.tile_n)

    def _tb_resources(self) -> TBResources:
        # Double-buffered LHS and RHS tiles live in shared memory; the
        # output tile lives in the register file.
        stage = (self.tile_m * self.tile_k + self.tile_k * self.tile_n)
        shared = 2 * stage * self.dtype.nbytes
        return TBResources(threads=self.threads, shared_mem=shared,
                           registers_per_thread=128)

    def _operand_read_bytes(
        self, spec: GPUSpec, elements: int, shared: bool, crossings: int
    ) -> float:
        """DRAM bytes to stream one operand.

        ``crossings`` is how many tile waves traverse the operand (the
        outer-product dataflow re-reads the LHS for every column of
        output tiles and vice versa) — unless the operand is resident
        in L2, in which case it streams from DRAM once.
        """
        copies = 1 if shared else self.batch
        operand_bytes = elements * self.dtype.nbytes * copies
        if operand_bytes <= spec.l2_size / 2:
            return float(operand_bytes)
        return float(operand_bytes) * crossings

    def flops(self) -> float:
        """Tensor-core FLOPs of the full batched GEMM."""
        return 2.0 * self.batch * self.m * self.n * self.k

    def output_bytes(self) -> float:
        """Bytes written for the output matrix."""
        return float(self.batch * self.m * self.n * self.dtype.nbytes)

    def launch_spec(self, spec: GPUSpec) -> KernelLaunch:
        read_a = self._operand_read_bytes(
            spec, self.m * self.k, self.a_shared, ceil_div(self.n, self.tile_n)
        )
        read_b = self._operand_read_bytes(
            spec, self.k * self.n, self.b_shared, ceil_div(self.m, self.tile_m)
        )
        epilogue_flops = (
            self.epilogue_flops_per_element * self.batch * self.m * self.n
        )
        return KernelLaunch(
            name=self.name,
            category=self.category,
            tb=self._tb_resources(),
            shape=WorkloadShape(grid=self.grid),
            dram_read_bytes=read_a + read_b + self._extra_read_bytes(),
            dram_write_bytes=self.output_bytes() + self._extra_write_bytes(),
            tensor_flops=self.flops(),
            cuda_flops=epilogue_flops + self._extra_cuda_flops(),
            bytes_in_flight_per_warp=MLP_MATMUL,
        )

    # Hooks for fused subclasses (extra traffic / FLOPs beyond the GEMM).
    def _extra_read_bytes(self) -> float:
        return 0.0

    def _extra_write_bytes(self) -> float:
        return 0.0

    def _extra_cuda_flops(self) -> float:
        return 0.0

    # -- numerics ------------------------------------------------------

    def _check_operands(self, a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        expect_a = (self.batch, self.m, self.k)
        expect_b = (self.batch, self.k, self.n)
        if self.a_shared:
            expect_a = (self.m, self.k)
        if self.b_shared:
            expect_b = (self.k, self.n)
        if tuple(a.shape) != expect_a:
            raise ShapeError(f"{self.name}: LHS shape {a.shape}, expected {expect_a}")
        if tuple(b.shape) != expect_b:
            raise ShapeError(f"{self.name}: RHS shape {b.shape}, expected {expect_b}")
        return self.dtype.quantize(a), self.dtype.quantize(b)

    def compute(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """FP16-storage, FP32-accumulate GEMM with optional epilogue."""
        a, b = self._check_operands(a, b)
        out = np.matmul(a, b, dtype=np.float32)
        if self.epilogue is not None:
            out = self.epilogue(out)
        return self.dtype.quantize(out)


def attention_score_matmul(
    batch_heads: int,
    seq_len: int,
    d_head: int,
    *,
    dtype: DType = DType.FP16,
    epilogue: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    epilogue_flops_per_element: float = 0.0,
    tile_n: int = 128,
) -> MatMulKernel:
    """The ``Q @ K^T`` MatMul producing the L x L attention matrix."""
    return MatMulKernel(
        batch=batch_heads,
        m=seq_len,
        n=seq_len,
        k=d_head,
        dtype=dtype,
        tile_m=128,
        tile_n=tile_n,
        tile_k=min(32, d_head),
        epilogue=epilogue,
        epilogue_flops_per_element=epilogue_flops_per_element,
        name="sda_qk_matmul",
        category=CATEGORY.MATMUL,
    )


def attention_value_matmul(
    batch_heads: int,
    seq_len: int,
    d_head: int,
    *,
    dtype: DType = DType.FP16,
) -> MatMulKernel:
    """The ``A @ V`` MatMul consuming the attention matrix."""
    return MatMulKernel(
        batch=batch_heads,
        m=seq_len,
        n=d_head,
        k=seq_len,
        dtype=dtype,
        tile_m=128,
        tile_n=min(128, math.ceil(d_head / 8) * 8),
        tile_k=32,
        name="sda_av_matmul",
        category=CATEGORY.MATMUL,
    )
