"""Simulated GPU kernel library.

Each kernel couples two things that real GPU kernels also couple:

1. **Numerics** — a numpy implementation that computes exactly what the
   CUDA kernel computes (FP16 storage, FP32 accumulation), used by the
   correctness tests and the examples;
2. **Cost** — a :class:`~repro.gpu.costmodel.KernelLaunch` derived from
   the kernel's tiling (grid size, per-thread-block resources, off-chip
   traffic, FLOPs), used by the device model to time the launch.

The two views are produced by the same object from the same shape
parameters, so the performance model and the numerics can never drift
apart silently.
"""

from repro.kernels.base import CATEGORY, Kernel, ceil_div
from repro.kernels.elementwise import (
    AddBiasGeluKernel,
    LayerNormKernel,
    ResidualAddKernel,
    ScaleMaskKernel,
)
from repro.kernels.backward import BlockSparseSoftmaxBackward, SoftmaxBackwardKernel
from repro.kernels.matmul import MatMulKernel
from repro.kernels.mha_fused import FullyFusedMHAKernel
from repro.kernels.softmax import (
    BatchedRowSoftmaxKernel,
    OnlineRowSoftmaxKernel,
    RowSoftmaxKernel,
)
from repro.kernels.decomposed import (
    GlobalScaleKernel,
    InterReductionKernel,
    LocalSoftmaxKernel,
)
from repro.kernels.fused import FusedGSMatMulKernel, FusedMatMulLSKernel

__all__ = [
    "Kernel",
    "CATEGORY",
    "ceil_div",
    "MatMulKernel",
    "RowSoftmaxKernel",
    "OnlineRowSoftmaxKernel",
    "BatchedRowSoftmaxKernel",
    "SoftmaxBackwardKernel",
    "BlockSparseSoftmaxBackward",
    "FullyFusedMHAKernel",
    "ScaleMaskKernel",
    "AddBiasGeluKernel",
    "ResidualAddKernel",
    "LayerNormKernel",
    "LocalSoftmaxKernel",
    "InterReductionKernel",
    "GlobalScaleKernel",
    "FusedMatMulLSKernel",
    "FusedGSMatMulKernel",
]
