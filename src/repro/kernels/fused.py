"""Fused MatMul + softmax sub-layer kernels (Section 3.3).

Decomposition makes the softmax sub-layers tile-shaped, so:

- **MatMul ∘ LS** — the ``Q @ K^T`` kernel applies Local Softmax to
  each output tile before storing it.  Setting the sub-vector size
  ``T`` equal to the MatMul's output tile width makes each sub-vector
  land entirely inside one thread block, so no cross-block
  communication is needed.  The attention matrix is written *already
  locally softmaxed* (``X'``) together with the per-sub-vector
  statistics ``m'``/``d'``.
- **GS ∘ MatMul** — the ``A @ V`` kernel scales each LHS element by its
  sub-vector's reconstruction factor ``r'`` as it is loaded, consuming
  ``X'`` directly.

Between them only the (un-fusable) IR kernel runs, sweeping the
``1/T``-sized intermediates.  Off-chip accesses to the attention
matrix drop from four sweeps to two (Fig. 6).

The exponent/max/sum work moves into the MatMul's epilogue, which is
why the paper observes MatMul execution time growing by 28–55% while
the softmax kernels disappear (Section 5.1); here that shows up as
CUDA-core FLOPs added to a tensor-core kernel.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.common.dtypes import DType
from repro.common.errors import ShapeError
from repro.common.validation import require_divisible
from repro.kernels.base import CATEGORY
from repro.kernels.decomposed import (
    INTERMEDIATE_BYTES,
    global_scaling,
    local_softmax,
)
from repro.kernels.matmul import MatMulKernel

#: CUDA-core FLOP-equivalents of the LS epilogue per output element.
#: Roughly 16 raw operations (the exponent occupies ~4 SFU issue slots,
#: the per-sub-vector max and sum reductions cost ~8 warp-shuffle steps,
#: plus subtract/normalise), executed at the ~50% issue efficiency
#: typical of GEMM epilogue code (register-file bound, no dual issue).
#: This is what makes the fused MatMul measurably slower than the plain
#: one — the paper's "MatMul execution time increases by 28~55%".
LS_EPILOGUE_FLOPS = 32.0

#: CUDA-core FLOPs of the GS prologue per LHS element (one multiply).
GS_PROLOGUE_FLOPS = 1.0


class FusedMatMulLSKernel(MatMulKernel):
    """``Q @ K^T`` with scale/mask and Local Softmax in the epilogue.

    The sub-vector size ``T`` *is* the output tile width (``tile_n``),
    per Section 3.3: "by setting T of the LS kernel equal to the output
    tile width of the MatMul kernel, the LS kernel can be fused to its
    preceding MatMul kernel".
    """

    def __init__(
        self,
        batch: int,
        m: int,
        n: int,
        k: int,
        t: int,
        *,
        dtype: DType = DType.FP16,
        pre_softmax_epilogue: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        pre_softmax_flops_per_element: float = 0.0,
        name: str = "sda_qk_ls_fused",
    ) -> None:
        require_divisible("n (attention row length)", n, t)
        super().__init__(
            batch,
            m,
            n,
            k,
            dtype=dtype,
            tile_m=128,
            tile_n=t,
            tile_k=min(32, k),
            epilogue=pre_softmax_epilogue,
            epilogue_flops_per_element=pre_softmax_flops_per_element,
            name=name,
            category=CATEGORY.MATMUL,
        )
        self.t = t

    @property
    def num_subvectors(self) -> int:
        """Sub-vectors produced: one per row per output-tile column."""
        return self.batch * self.m * (self.n // self.t)

    def _extra_write_bytes(self) -> float:
        return 2.0 * self.num_subvectors * INTERMEDIATE_BYTES

    def _extra_cuda_flops(self) -> float:
        return LS_EPILOGUE_FLOPS * self.batch * self.m * self.n

    def compute(self, a: np.ndarray, b: np.ndarray):
        """Returns ``(x_prime, m_prime, d_prime)``.

        ``x_prime`` is stored in fp16; the statistics stay in fp32,
        exactly as the real fused kernel keeps them.
        """
        a, b = self._check_operands(a, b)
        scores = np.matmul(a, b, dtype=np.float32)
        if self.epilogue is not None:
            scores = self.epilogue(scores)
        x_prime, m_prime, d_prime = local_softmax(scores, self.t)
        return self.dtype.quantize(x_prime), m_prime, d_prime


class FusedGSMatMulKernel(MatMulKernel):
    """``(X' * r') @ V`` — Global Scaling in the MatMul prologue.

    Each LHS element is multiplied by its sub-vector's reconstruction
    factor as it streams into shared memory; ``r'`` adds only
    ``1/T``-sized read traffic.
    """

    def __init__(
        self,
        batch: int,
        m: int,
        n: int,
        k: int,
        t: int,
        *,
        dtype: DType = DType.FP16,
        name: str = "sda_gs_av_fused",
    ) -> None:
        require_divisible("k (attention row length)", k, t)
        super().__init__(
            batch,
            m,
            n,
            k,
            dtype=dtype,
            tile_m=128,
            tile_n=min(128, max(8, n)),
            tile_k=32,
            name=name,
            category=CATEGORY.MATMUL,
        )
        self.t = t

    @property
    def num_subvectors(self) -> int:
        """Reconstruction factors consumed: one per LHS row sub-vector."""
        return self.batch * self.m * (self.k // self.t)

    def _extra_read_bytes(self) -> float:
        return float(self.num_subvectors * INTERMEDIATE_BYTES)

    def _extra_cuda_flops(self) -> float:
        return GS_PROLOGUE_FLOPS * self.batch * self.m * self.k

    def compute(
        self, x_prime: np.ndarray, r_prime: np.ndarray, v: np.ndarray
    ) -> np.ndarray:
        """Scale ``x_prime`` by ``r_prime`` and multiply by ``v``."""
        expect_r = (self.batch, self.m, self.k // self.t)
        if tuple(r_prime.shape) != expect_r:
            raise ShapeError(
                f"{self.name}: r' shape {r_prime.shape}, expected {expect_r}"
            )
        x_prime = self.dtype.quantize(x_prime)
        scaled = global_scaling(x_prime, r_prime, self.t)
        return super().compute(scaled, v)


def verification_oracles():
    """Oracle running the fused SDF pipeline — MatMul∘LS, IR, GS∘MatMul
    — against dense masked attention, on rectangular shapes."""
    from repro.common.dtypes import DType
    from repro.kernels.decomposed import inter_reduction
    from repro.verify.contracts import FP16_ATTENTION, FP32_ATTENTION
    from repro.verify.refs import (
        accumulation_slack,
        dense_attention,
        rect_causal_mask,
    )
    from repro.verify.registry import OracleSpec

    def run(case):
        q, k, v = case.arrays["q"], case.arrays["k"], case.arrays["v"]
        mask = case.arrays["mask"]
        t = case.params["t"]
        scale = np.float32(case.params["scale"])
        bh, l_q, d = q.shape
        l_k = k.shape[1]
        if case.params["causal"]:
            mask = mask & rect_causal_mask(l_q, l_k)

        def epilogue(scores):
            return np.where(mask, scores * scale, np.float32(-np.inf))

        ls = FusedMatMulLSKernel(bh, l_q, l_k, d, t, dtype=case.dtype,
                                 pre_softmax_epilogue=epilogue)
        x_prime, m_prime, d_prime = ls.compute(q, np.swapaxes(k, 1, 2))
        r_prime = inter_reduction(m_prime, d_prime)
        gs = FusedGSMatMulKernel(bh, l_q, d, l_k, t, dtype=case.dtype)
        actual = gs.compute(x_prime, r_prime, v)
        expected, scores, _ = dense_attention(q, k, v, case.dtype,
                                              scale=scale, mask=mask)
        probs = global_scaling(case.dtype.quantize(x_prime), r_prime, t)
        return {
            "actual": actual,
            "expected": expected,
            "probs": probs,
            "scores": scores,
            "r_prime": r_prime,
            "slack": accumulation_slack(scores),
        }

    return [
        OracleSpec(
            name="attention.sdf_pipeline_vs_dense",
            family="attention",
            run=run,
            contracts={DType.FP32: FP32_ATTENTION,
                       DType.FP16: FP16_ATTENTION},
            invariants=("row_sum_one", "masked_zeros",
                        "reconstruction_factors", "finite_outputs"),
            description="fused MatMul∘LS → IR → GS∘MatMul vs dense "
                        "masked attention (rectangular)",
        ),
    ]
