"""FlashAttention-style tiled attention (Dao et al., 2022).

Published the same year as the paper, FlashAttention is the natural
end point of the ideas softmax recomposition develops: where SDF
decomposes softmax so its sub-layers fuse into the two MatMuls (still
materialising the locally softmaxed matrix ``X'`` once), FlashAttention
keeps a *running* softmax — the online-normaliser recurrence of [21]
applied per K/V tile — and rescales a resident output accumulator, so
no attention-sized tensor ever exists:

    for each K/V tile j:
        S_j   = Q_i @ K_j^T            (in registers)
        m_new = max(m, rowmax(S_j))
        P_j   = exp(S_j - m_new)
        l     = l * exp(m - m_new) + rowsum(P_j)
        O     = O * exp(m - m_new) + P_j @ V_j
        m     = m_new
    O /= l

Shared memory holds only fixed-size tiles — independent of ``L`` — so
unlike the fully fused MHA kernel (Section 7) it works at any sequence
length.  The price is extra arithmetic: the exponentials run on the
CUDA/SFU pipes *inside* the GEMM mainloop, and the output accumulator
is rescaled once per K/V tile.

Included as a forward-looking comparison plan (``flash``); the
benchmark suite positions it against SDF.
"""

from __future__ import annotations

import math

import numpy as np

from repro.common.dtypes import DType
from repro.common.errors import ShapeError
from repro.common.validation import require_positive
from repro.gpu.costmodel import KernelLaunch, MLP_MATMUL, WorkloadShape
from repro.gpu.occupancy import TBResources
from repro.gpu.specs import GPUSpec
from repro.kernels.base import CATEGORY, Kernel, ceil_div

#: Query rows per thread block (the Q tile height).
TILE_Q = 128
#: K/V rows per mainloop iteration (the K/V tile height).
TILE_KV = 128

#: CUDA-core FLOP-equivalents per attention-matrix element for the
#: in-mainloop softmax: SFU exponent (~4 issue slots at ~50% epilogue
#: efficiency => 8), running max/sum updates (~4).
_SOFTMAX_FLOPS = 12.0
#: Accumulator rescale: d_head multiply-adds per row per K/V tile,
#: i.e. d_head / TILE_KV per attention element.
_RESCALE_FLOPS_PER_ELEMENT = 64.0 / TILE_KV


class FlashAttentionKernel(Kernel):
    """Single-kernel tiled attention with online softmax.

    Traffic: Q/K/V in, O out — nothing else.  Compute: both GEMMs on
    the tensor cores plus the per-element online-softmax work on the
    CUDA/SFU pipes.
    """

    category = CATEGORY.MATMUL

    def __init__(
        self,
        batch_heads: int,
        seq_len: int,
        d_head: int,
        *,
        dtype: DType = DType.FP16,
        scale: float = 1.0,
        causal: bool = False,
        name: str = "flash_attention",
    ) -> None:
        require_positive("batch_heads", batch_heads)
        require_positive("seq_len", seq_len)
        require_positive("d_head", d_head)
        self.batch_heads = batch_heads
        self.seq_len = seq_len
        self.d_head = d_head
        self.dtype = dtype
        self.scale = scale
        self.causal = causal
        self.name = name

    def _score_elements(self) -> float:
        """Attention-matrix elements actually computed."""
        full = self.batch_heads * self.seq_len * self.seq_len
        # Causal kernels skip tiles entirely above the diagonal.
        return full / 2 if self.causal else float(full)

    def launch_spec(self, spec: GPUSpec) -> KernelLaunch:
        elem = self.dtype.nbytes
        d = self.d_head
        operand = self.batch_heads * self.seq_len * d * elem
        # Q tile + double-buffered K and V tiles; the output
        # accumulator and the m/l statistics live in registers.
        shared = (TILE_Q * d + 2 * 2 * TILE_KV * d) * elem
        scores = self._score_elements()
        return KernelLaunch(
            name=self.name,
            category=self.category,
            tb=TBResources(threads=256, shared_mem=shared,
                           registers_per_thread=255),
            shape=WorkloadShape(
                grid=self.batch_heads * ceil_div(self.seq_len, TILE_Q)
            ),
            dram_read_bytes=3 * operand,
            dram_write_bytes=operand,
            tensor_flops=2 * 2.0 * scores * d,
            cuda_flops=(_SOFTMAX_FLOPS + _RESCALE_FLOPS_PER_ELEMENT) * scores,
            bytes_in_flight_per_warp=MLP_MATMUL,
        )

    def _check_qkv(self, q, k, v):
        expected = (self.batch_heads, self.seq_len, self.d_head)
        for label, array in (("Q", q), ("K", k), ("V", v)):
            if tuple(array.shape) != expected:
                raise ShapeError(
                    f"{self.name}: {label} shape {array.shape}, "
                    f"expected {expected}"
                )
        return (
            self.dtype.quantize(q),
            self.dtype.quantize(k),
            self.dtype.quantize(v),
        )

    def compute(self, q: np.ndarray, k: np.ndarray, v: np.ndarray) -> np.ndarray:
        """The tiled online-softmax recurrence, all Q tiles in lockstep.

        Q tiles are mutually independent, so the full-height tiles run
        as one extra batch axis; only the K/V mainloop (the true
        sequential dependence) remains a Python loop.  A ragged tail
        tile runs the same math at its own height.  Bit-identical to
        the tile-by-tile loop (:meth:`compute_reference`), enforced by
        the golden tests.
        """
        q, k, v = self._check_qkv(q, k, v)
        bh, length, d = self.batch_heads, self.seq_len, self.d_head
        out = np.zeros((bh, length, d), dtype=np.float32)

        full = (length // TILE_Q) * TILE_Q
        if full:
            tiles = q[:, :full].reshape(bh, -1, TILE_Q, d)
            starts = np.arange(0, full, TILE_Q)
            out[:, :full] = self._forward_tiles(
                tiles, starts, k, v
            ).reshape(bh, full, d)
        if full < length:
            out[:, full:] = self._forward_tiles(
                q[:, full:, :][:, None], np.array([full]), k, v
            )[:, 0]
        return self.dtype.quantize(out)

    def _forward_tiles(
        self, q_tiles: np.ndarray, starts: np.ndarray,
        k: np.ndarray, v: np.ndarray,
    ) -> np.ndarray:
        """Run the K/V recurrence for ``(bh, nt, rows, d)`` Q tiles.

        For causal attention, K/V tiles entirely above a Q tile's
        diagonal contribute fully ``-inf`` scores, which the recurrence
        treats as exact no-ops — equivalent to the early ``break`` of
        the tile-by-tile loop.
        """
        bh, nt, rows, d = q_tiles.shape
        length = self.seq_len
        scale = np.float32(self.scale)
        m = np.full((bh, nt, rows), -np.inf, dtype=np.float32)
        l = np.zeros((bh, nt, rows), dtype=np.float32)
        acc = np.zeros((bh, nt, rows, d), dtype=np.float32)
        qi = (starts[:, None] + np.arange(rows)[None, :])[:, :, None]
        last_active = int(starts[-1]) + rows - 1
        for k0 in range(0, length, TILE_KV):
            k1 = min(k0 + TILE_KV, length)
            if self.causal and k0 > last_active:
                break  # above every tile's diagonal
            s = np.matmul(q_tiles, np.swapaxes(k[:, None, k0:k1], 2, 3),
                          dtype=np.float32) * scale
            if self.causal:
                kj = np.arange(k0, k1)[None, None, :]
                s = np.where(kj > qi, -np.inf, s)
            tile_max = s.max(axis=-1)
            m_new = np.maximum(m, tile_max)
            safe_m = np.where(np.isfinite(m_new), m_new, 0.0)
            p = np.where(np.isfinite(s), np.exp(s - safe_m[..., None]), 0.0)
            correction = np.where(np.isfinite(m), np.exp(m - safe_m), 0.0)
            l = l * correction + p.sum(axis=-1)
            acc = acc * correction[..., None] + np.matmul(
                p, v[:, None, k0:k1], dtype=np.float32
            )
            m = m_new
        return np.divide(
            acc, l[..., None], out=np.zeros_like(acc),
            where=l[..., None] > 0,
        )

    def compute_reference(
        self, q: np.ndarray, k: np.ndarray, v: np.ndarray
    ) -> np.ndarray:
        """Pre-vectorization tile-by-tile loop, kept as the golden
        reference for the batched :meth:`compute`."""
        q, k, v = self._check_qkv(q, k, v)
        bh, length, d = self.batch_heads, self.seq_len, self.d_head
        scale = np.float32(self.scale)
        out = np.zeros((bh, length, d), dtype=np.float32)

        for q0 in range(0, length, TILE_Q):
            q1 = min(q0 + TILE_Q, length)
            q_tile = q[:, q0:q1]
            rows = q1 - q0
            m = np.full((bh, rows), -np.inf, dtype=np.float32)
            l = np.zeros((bh, rows), dtype=np.float32)
            acc = np.zeros((bh, rows, d), dtype=np.float32)
            for k0 in range(0, length, TILE_KV):
                k1 = min(k0 + TILE_KV, length)
                if self.causal and k0 > q1 - 1:
                    break  # tiles entirely above the diagonal
                s = np.matmul(q_tile, np.swapaxes(k[:, k0:k1], 1, 2),
                              dtype=np.float32) * scale
                if self.causal:
                    qi = np.arange(q0, q1)[:, None]
                    kj = np.arange(k0, k1)[None, :]
                    s = np.where(kj > qi, -np.inf, s)
                tile_max = s.max(axis=-1)
                m_new = np.maximum(m, tile_max)
                safe_m = np.where(np.isfinite(m_new), m_new, 0.0)
                p = np.where(np.isfinite(s), np.exp(s - safe_m[..., None]),
                             0.0)
                correction = np.where(
                    np.isfinite(m), np.exp(m - safe_m), 0.0
                )
                l = l * correction + p.sum(axis=-1)
                acc = acc * correction[..., None] + np.matmul(
                    p, v[:, k0:k1], dtype=np.float32
                )
                m = m_new
            out[:, q0:q1] = np.divide(
                acc, l[..., None], out=np.zeros_like(acc),
                where=l[..., None] > 0,
            )
        return self.dtype.quantize(out)


def flash_memory_footprint(batch_heads: int, seq_len: int, d_head: int,
                           dtype: DType = DType.FP16) -> int:
    """Extra device memory FlashAttention needs beyond Q/K/V/O: none of
    attention-matrix size — only the per-row statistics."""
    return batch_heads * seq_len * 2 * 4  # m and l in fp32


def flash_shared_mem(d_head: int, dtype: DType = DType.FP16) -> int:
    """Shared memory per thread block — independent of sequence length,
    which is why FlashAttention scales where the fused MHA kernel of
    Section 7 cannot."""
    return (TILE_Q * d_head + 4 * TILE_KV * d_head) * dtype.nbytes


def verification_oracles():
    """Oracles for the dense FlashAttention kernel: the textbook dense
    reference plus the vectorized-vs-tile-loop golden pair."""
    from repro.common.dtypes import DType
    from repro.verify.contracts import EXACT, FP16_ATTENTION, FP32_ATTENTION
    from repro.verify.refs import accumulation_slack, dense_attention
    from repro.verify.registry import OracleSpec

    def _kernel(case):
        q = case.arrays["q_sq"]
        bh, l_k, d = q.shape
        return FlashAttentionKernel(
            bh, l_k, d, dtype=case.dtype, scale=case.params["scale"],
            causal=case.params["causal"],
        ), q

    def run_vs_dense(case):
        kernel, q = _kernel(case)
        k, v = case.arrays["k"], case.arrays["v"]
        expected, scores, _ = dense_attention(
            q, k, v, case.dtype, scale=case.params["scale"],
            causal=case.params["causal"],
        )
        return {"actual": kernel.compute(q, k, v), "expected": expected,
                "slack": accumulation_slack(scores)}

    def run_golden(case):
        kernel, q = _kernel(case)
        k, v = case.arrays["k"], case.arrays["v"]
        return {
            "actual": kernel.compute(q, k, v),
            "expected": kernel.compute_reference(q, k, v),
        }

    return [
        OracleSpec(
            name="attention.flash_vs_dense",
            family="attention",
            run=run_vs_dense,
            contracts={DType.FP32: FP32_ATTENTION,
                       DType.FP16: FP16_ATTENTION},
            invariants=("finite_outputs",),
            description="tiled online-softmax attention vs dense attention",
        ),
        OracleSpec(
            name="attention.flash_golden",
            family="attention",
            run=run_golden,
            contracts={DType.FP32: EXACT, DType.FP16: EXACT},
            tags=("golden",),
            description="vectorized flash compute vs tile-loop reference",
        ),
    ]
