"""Element-wise and row-normalisation kernels.

These are the memory-bound glue layers of the transformer (scale,
mask, bias+GeLU, residual add, LayerNorm).  Their data access pattern
is simple, so — as the paper notes in Section 2.3 — they are routinely
fused into adjacent MatMuls; the standalone kernels here exist for the
un-fused library baselines (Fig. 7) and for the ``other`` category of
the breakdown figures.
"""

from __future__ import annotations

import numpy as np

from repro.common.dtypes import DType
from repro.common.errors import ShapeError
from repro.common.validation import require_positive
from repro.gpu.costmodel import (
    KernelLaunch,
    MLP_REDUCTION,
    MLP_STREAMING,
    WorkloadShape,
)
from repro.gpu.occupancy import TBResources
from repro.gpu.specs import GPUSpec
from repro.kernels.base import CATEGORY, Kernel, ceil_div

#: Elements processed by one 256-thread streaming thread block
#: (8 elements per thread, a typical grid-stride unroll).
_TB_ELEMENTS = 2048


def gelu(x: np.ndarray) -> np.ndarray:
    """GeLU activation (tanh approximation, as used by BERT/GPT)."""
    x = np.asarray(x, dtype=np.float32)
    c = np.float32(np.sqrt(2.0 / np.pi))
    return 0.5 * x * (1.0 + np.tanh(c * (x + 0.044715 * x**3)))


class _StreamingKernel(Kernel):
    """Shared cost logic for fully streaming element-wise kernels."""

    def __init__(
        self,
        elements: int,
        *,
        dtype: DType = DType.FP16,
        reads_per_element: float = 1.0,
        writes_per_element: float = 1.0,
        flops_per_element: float = 1.0,
        name: str = "elementwise",
        category: str = CATEGORY.OTHER,
    ) -> None:
        require_positive("elements", elements)
        self.elements = elements
        self.dtype = dtype
        self.reads_per_element = reads_per_element
        self.writes_per_element = writes_per_element
        self.flops_per_element = flops_per_element
        self.name = name
        self.category = category

    def launch_spec(self, spec: GPUSpec) -> KernelLaunch:
        elem_bytes = self.dtype.nbytes
        return KernelLaunch(
            name=self.name,
            category=self.category,
            tb=TBResources(threads=256),
            shape=WorkloadShape(grid=ceil_div(self.elements, _TB_ELEMENTS)),
            dram_read_bytes=self.elements * self.reads_per_element * elem_bytes,
            dram_write_bytes=self.elements * self.writes_per_element * elem_bytes,
            cuda_flops=self.flops_per_element * self.elements,
            bytes_in_flight_per_warp=MLP_STREAMING,
        )


class ScaleMaskKernel(_StreamingKernel):
    """Standalone ``x / sqrt(d_head) + mask`` over the attention matrix.

    Only the un-fused library baselines launch this; the paper's
    baseline (and ours) folds it into the preceding MatMul epilogue.
    """

    def __init__(self, elements: int, scale: float, *, dtype: DType = DType.FP16,
                 name: str = "scale_mask") -> None:
        super().__init__(
            elements,
            dtype=dtype,
            reads_per_element=1.0,
            writes_per_element=1.0,
            flops_per_element=2.0,
            name=name,
            category=CATEGORY.OTHER,
        )
        self.scale = scale

    def compute(self, x: np.ndarray, mask: np.ndarray = None) -> np.ndarray:
        x = self.dtype.quantize(x).astype(np.float32) * np.float32(self.scale)
        if mask is not None:
            x = x + mask
        return self.dtype.quantize(x)


class ResidualAddKernel(_StreamingKernel):
    """``y = x + residual`` over the hidden matrix."""

    def __init__(self, elements: int, *, dtype: DType = DType.FP16) -> None:
        super().__init__(
            elements,
            dtype=dtype,
            reads_per_element=2.0,
            writes_per_element=1.0,
            flops_per_element=1.0,
            name="residual_add",
        )

    def compute(self, x: np.ndarray, residual: np.ndarray) -> np.ndarray:
        if x.shape != residual.shape:
            raise ShapeError(
                f"residual_add: mismatched shapes {x.shape} vs {residual.shape}"
            )
        return self.dtype.quantize(
            self.dtype.quantize(x).astype(np.float32)
            + self.dtype.quantize(residual).astype(np.float32)
        )


class AddBiasGeluKernel(_StreamingKernel):
    """``y = gelu(x + bias)`` — the FF block activation."""

    def __init__(self, elements: int, *, dtype: DType = DType.FP16) -> None:
        super().__init__(
            elements,
            dtype=dtype,
            reads_per_element=1.0,
            writes_per_element=1.0,
            flops_per_element=9.0,  # bias add + tanh-GeLU polynomial
            name="bias_gelu",
            category=CATEGORY.FEEDFORWARD,
        )

    def compute(self, x: np.ndarray, bias: np.ndarray) -> np.ndarray:
        x = self.dtype.quantize(x).astype(np.float32)
        return self.dtype.quantize(gelu(x + np.asarray(bias, dtype=np.float32)))


class LayerNormKernel(Kernel):
    """Row-wise LayerNorm over the hidden dimension.

    A reduction kernel like softmax, but over the (short) hidden
    dimension rather than the sequence, so occupancy is never the
    problem it is for attention rows.
    """

    category = CATEGORY.OTHER

    def __init__(self, rows: int, width: int, *, dtype: DType = DType.FP16) -> None:
        require_positive("rows", rows)
        require_positive("width", width)
        self.rows = rows
        self.width = width
        self.dtype = dtype
        self.name = "layernorm"

    def launch_spec(self, spec: GPUSpec) -> KernelLaunch:
        elements = self.rows * self.width
        elem_bytes = self.dtype.nbytes
        return KernelLaunch(
            name=self.name,
            category=self.category,
            tb=TBResources(threads=256, shared_mem=self.width * 4),
            shape=WorkloadShape(grid=self.rows),
            dram_read_bytes=elements * elem_bytes,
            dram_write_bytes=elements * elem_bytes,
            cuda_flops=8.0 * elements,
            issue_fraction=0.5,  # two of four passes touch DRAM
            bytes_in_flight_per_warp=MLP_REDUCTION,
        )

    def compute(
        self,
        x: np.ndarray,
        gamma: np.ndarray,
        beta: np.ndarray,
        eps: float = 1e-5,
    ) -> np.ndarray:
        if x.shape[-1] != self.width:
            raise ShapeError(
                f"layernorm: width {x.shape[-1]}, expected {self.width}"
            )
        x = self.dtype.quantize(x).astype(np.float32)
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        normed = (x - mean) / np.sqrt(var + np.float32(eps))
        return self.dtype.quantize(normed * gamma + beta)
