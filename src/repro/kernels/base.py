"""Kernel base class and breakdown categories.

A :class:`Kernel` is constructed with its full shape/tiling
configuration.  ``launch_spec(spec)`` derives the cost-model view for a
given device, ``compute(...)`` runs the numerics, and ``run(device,
...)`` does both.  Passing ``device=None`` runs the numerics alone
(pure math); calling ``launch_spec`` alone times the kernel without
touching data (used by the benchmarks, which run at paper scale where
materialising 512 MB attention matrices per layer would be wasteful).
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.gpu.costmodel import KernelLaunch
from repro.gpu.device import Device
from repro.gpu.specs import GPUSpec


class CATEGORY:
    """Breakdown categories used by the paper's figures.

    ``MATMUL`` is the SDA-block MatMul (Q.K^T and A.V); ``FC`` the four
    fully connected projections of the MHA block; ``FEEDFORWARD`` the
    FF block; ``SOFTMAX`` every softmax sub-layer (monolithic, LS, IR,
    GS); ``OTHER`` LayerNorm/residual/element-wise glue.  Fused
    MatMul+softmax kernels are charged to ``MATMUL``, matching how the
    paper's Fig. 8 accounts for them ("the execution time of MatMul
    increases by approximately 28~55%").
    """

    MATMUL = "matmul"
    SOFTMAX = "softmax"
    FC = "fc"
    FEEDFORWARD = "feedforward"
    OTHER = "other"

    ALL = (MATMUL, SOFTMAX, FC, FEEDFORWARD, OTHER)


def ceil_div(a: int, b: int) -> int:
    """Ceiling integer division."""
    return -(-a // b)


class Kernel(abc.ABC):
    """A simulated GPU kernel: shape-bound numerics plus cost."""

    #: Kernel name shown in profiles.
    name: str = "kernel"
    #: Breakdown category (one of :class:`CATEGORY`).
    category: str = CATEGORY.OTHER

    @abc.abstractmethod
    def launch_spec(self, spec: GPUSpec) -> KernelLaunch:
        """The cost-model view of this kernel on device ``spec``."""

    @abc.abstractmethod
    def compute(self, *arrays: np.ndarray):
        """Run the numerics; returns one array or a tuple of arrays."""

    def run(self, device: Optional[Device], *arrays: np.ndarray):
        """Launch on ``device`` (if given) and run the numerics."""
        if device is not None:
            device.launch(self.launch_spec(device.spec))
        return self.compute(*arrays)

    def simulate(self, device: Device) -> None:
        """Launch on ``device`` without running the numerics."""
        device.launch(self.launch_spec(device.spec))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"
