PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench verify

test:
	$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) benchmarks/bench_selfperf.py

verify:
	$(PYTHON) -m repro verify
