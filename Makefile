PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-fast bench bench-serving bench-serving-smoke verify \
	verify-fuzz lint cluster-smoke controlplane-smoke trace-smoke \
	approx-smoke tune-smoke moe-smoke

test:
	$(PYTHON) -m pytest -x -q

# Everything except tests marked `slow` — the edit-run loop subset.
test-fast:
	$(PYTHON) -m pytest -x -q -m "not slow"

# Prefers ruff, falls back to pyflakes, and degrades to a syntax check
# when neither is installed (offline environments).  Always ends with
# the seed audit: no unseeded randomness in tests or benchmarks.
lint:
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check --select E9,F src tests benchmarks examples; \
	elif $(PYTHON) -m pyflakes --version >/dev/null 2>&1; then \
		$(PYTHON) -m pyflakes src tests benchmarks examples; \
	else \
		echo "ruff/pyflakes unavailable; syntax check only"; \
		$(PYTHON) -m compileall -q src tests benchmarks examples; \
	fi
	$(PYTHON) tools/lint_seeded_rng.py tests benchmarks

# Tiny fixed-seed approx-sweep compared byte-for-byte (modulo float
# ulp) against the committed golden report (see docs/approx.md).
approx-smoke:
	$(PYTHON) -m repro approx-sweep --models bert-large \
		--seq-lens 256,1024 --cases 2 --seed 0 \
		--output /tmp/approx_sweep_smoke.json >/dev/null
	$(PYTHON) tools/compare_golden.py /tmp/approx_sweep_smoke.json \
		tests/golden/approx_sweep_smoke.json

# Tiny fixed-seed tuning run compared byte-for-byte (modulo float ulp)
# against the committed golden artifact — pins both the search's
# determinism and the repro.tuned_plan/v1 schema (see docs/tuning.md).
tune-smoke:
	$(PYTHON) -m repro tune --objective ttft_p99 --budget 8 \
		--rate 2 --duration 3 --seed 0 \
		--output /tmp/tune_smoke.json >/dev/null
	$(PYTHON) tools/compare_golden.py /tmp/tune_smoke.json \
		tests/golden/tune_smoke.json

# Fixed-seed MoE + speculative-decoding serving run compared against
# the committed golden report — pins the expert-parallel cost model
# and the deterministic speculative schedule (see docs/models.md).
moe-smoke:
	$(PYTHON) -m repro serve-sim --model bert-large \
		--n-experts 8 --top-k 2 \
		--draft-model gpt-neo-1.3b --draft-len 4 --accept-rate 0.75 \
		--rate 4 --duration 3 --seed 0 --plans baseline,sdf \
		--json > /tmp/moe_smoke.json
	$(PYTHON) tools/compare_golden.py /tmp/moe_smoke.json \
		tests/golden/moe_smoke.json

bench:
	$(PYTHON) benchmarks/bench_selfperf.py

# Full-scale serving benchmark: 100k-request event-vs-epoch timing
# (byte-identical reports required) plus the million-request sharded
# cluster smoke; writes BENCH_serving.json (see docs/performance.md).
bench-serving:
	$(PYTHON) benchmarks/bench_serving.py

# Small-N CI smoke of the same harness; at this scale the equivalence
# check runs in exact-percentile mode, the strictest comparison.
bench-serving-smoke:
	$(PYTHON) benchmarks/bench_serving.py --requests 2000 \
		--cluster-requests 4000 --jobs 2 \
		--output /tmp/bench_serving_smoke.json

verify:
	$(PYTHON) -m repro verify

# Differential fuzzing of every registered oracle; failure artifacts
# land in verify-artifacts/ (see docs/verification.md).
verify-fuzz:
	$(PYTHON) -m repro verify fuzz --cases 200 --seed 0 \
		--artifact-dir verify-artifacts

# Two-replica, TP=2 cluster simulation (see docs/cluster.md).
cluster-smoke:
	$(PYTHON) -m repro cluster-sim --replicas 2 --tp 2 \
		--policy least-outstanding --rate 4 --duration 5 --seed 0 --json

# Bursty-arrival control-plane run with one injected replica death:
# the fleet must recover without losing a request and the conservation
# identity must hold (see docs/controlplane.md).
controlplane-smoke:
	$(PYTHON) -m repro controlplane-sim --arrival mmpp --rate 2 \
		--burst-rate 10 --duration 8 --replicas 2 --death 1.5 \
		--cold-start 0.1 --seed 0 --json \
	| $(PYTHON) -c "import json, sys; \
		doc = json.load(sys.stdin); \
		assert doc['kind'] == 'controlplane-report', doc['kind']; \
		plan = doc['plans']['sdf']; \
		section = plan['controlplane']; \
		assert section['schema'] == 'repro.controlplane/v1'; \
		assert section['conservation_ok'], 'requests leaked'; \
		deaths = [f for f in section['faults'] if f['kind'] == 'death']; \
		assert len(deaths) == 1, section['faults']; \
		assert deaths[0]['requeued'] > 0, deaths[0]; \
		assert deaths[0]['lost'] == 0, deaths[0]; \
		assert deaths[0]['recovery_s'] > 0.0, deaths[0]; \
		print('controlplane-smoke ok:', plan['finished'], 'finished,', \
			deaths[0]['requeued'], 'requeued, recovered in', \
			round(deaths[0]['recovery_s'], 3), 's')"

# Traced serving simulation: the exported Chrome trace must parse and
# its spans must strictly nest (see docs/observability.md).
trace-smoke:
	$(PYTHON) -m repro trace --sim serving --rate 2 --duration 2 \
		--seed 0 --json \
	| $(PYTHON) -c "import json, sys; \
		from repro.obs import validate_nesting; \
		doc = json.load(sys.stdin); \
		assert doc['schema'] == 'repro.trace/v1', doc['schema']; \
		assert doc['summary']['spans'] > 0, 'no spans recorded'; \
		problems = validate_nesting(doc['traceEvents']); \
		assert not problems, problems; \
		print('trace-smoke ok:', len(doc['traceEvents']), 'events')"
