#!/usr/bin/env python
"""Seed-audit lint: no unseeded randomness in the test suites.

Every test in this repository must be reproducible from its source —
a failure seen once must be reproducible forever.  This check flags
the constructs that break that property:

- ``np.random.default_rng()`` with no seed argument;
- the legacy seedless global-state API (``np.random.rand``,
  ``np.random.standard_normal`` and friends) — even when preceded by
  ``np.random.seed`` the global stream is order-dependent across
  tests, so the Generator API with an explicit seed is required;
- the stdlib ``random`` module's global functions.

A line may be waived with a trailing ``# seeded-ok: <reason>`` comment
(for tests that deliberately exercise unseeded behaviour).

Usage: ``python tools/lint_seeded_rng.py [paths...]`` (defaults to
``tests`` and ``benchmarks``); exits 1 with one line per violation.
"""

from __future__ import annotations

import pathlib
import re
import sys

#: An unseeded Generator construction: bare ``default_rng()``.
_UNSEEDED_DEFAULT_RNG = re.compile(r"\bdefault_rng\(\s*\)")

#: Legacy NumPy global-state sampling functions.
_LEGACY_NP = re.compile(
    r"\bnp\.random\.(rand|randn|randint|random|random_sample|choice|"
    r"shuffle|permutation|normal|uniform|standard_normal|exponential|"
    r"poisson|seed)\b"
)

#: Stdlib ``random`` global functions (module-level state).
_STDLIB_RANDOM = re.compile(
    r"(?<![\w.])random\.(random|randint|randrange|choice|choices|"
    r"shuffle|sample|uniform|gauss|seed)\("
)

_WAIVER = "seeded-ok"


def scan_file(path: pathlib.Path) -> "list[str]":
    problems = []
    for lineno, line in enumerate(
        path.read_text().splitlines(), start=1
    ):
        if _WAIVER in line:
            continue
        stripped = line.split("#", 1)[0]
        for pattern, message in (
            (_UNSEEDED_DEFAULT_RNG, "unseeded default_rng()"),
            (_LEGACY_NP, "legacy np.random global-state API"),
            (_STDLIB_RANDOM, "stdlib random module global state"),
        ):
            if pattern.search(stripped):
                problems.append(
                    f"{path}:{lineno}: {message}: {line.strip()}"
                )
    return problems


def main(argv: "list[str]") -> int:
    roots = [pathlib.Path(p) for p in argv] or [
        pathlib.Path("tests"), pathlib.Path("benchmarks")
    ]
    problems: "list[str]" = []
    for root in roots:
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for path in files:
            problems.extend(scan_file(path))
    for problem in problems:
        print(problem)
    if problems:
        print(f"seed lint: {len(problems)} unseeded-RNG uses "
              f"(waive deliberate ones with '# seeded-ok: <reason>')")
        return 1
    print("seed lint: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
