#!/usr/bin/env python
"""Compare a result JSON document against a committed golden copy.

Fixed-seed runs of the simulator are deterministic, so the comparison
is exact by default — any drift in a golden document is a behaviour
change that must be reviewed, not absorbed.  Floating-point values are
still compared with a tiny relative tolerance (``--rtol``) so that a
NumPy upgrade changing the last ulp of a reduction does not page
someone; structural changes (keys appearing/disappearing, strings or
integers changing) always fail.

Usage::

    python tools/compare_golden.py actual.json golden.json
    python tools/compare_golden.py actual.json golden.json --rtol 1e-9

Regenerate a golden on purposeful change with the producing command's
``--output`` flag, and review the diff like any other code change.
"""

from __future__ import annotations

import argparse
import json
import math
import sys


def diff(actual, golden, rtol: float, path: str = "$") -> "list[str]":
    problems: "list[str]" = []
    if isinstance(golden, dict):
        if not isinstance(actual, dict):
            return [f"{path}: expected object, got {type(actual).__name__}"]
        for key in sorted(set(golden) | set(actual)):
            if key not in actual:
                problems.append(f"{path}.{key}: missing from actual")
            elif key not in golden:
                problems.append(f"{path}.{key}: not in golden")
            else:
                problems.extend(
                    diff(actual[key], golden[key], rtol, f"{path}.{key}")
                )
    elif isinstance(golden, list):
        if not isinstance(actual, list):
            return [f"{path}: expected array, got {type(actual).__name__}"]
        if len(actual) != len(golden):
            return [f"{path}: length {len(actual)} != {len(golden)}"]
        for index, (a, g) in enumerate(zip(actual, golden)):
            problems.extend(diff(a, g, rtol, f"{path}[{index}]"))
    elif isinstance(golden, float) and isinstance(actual, (int, float)) \
            and not isinstance(actual, bool):
        if not math.isclose(float(actual), golden,
                            rel_tol=rtol, abs_tol=rtol):
            problems.append(f"{path}: {actual} != {golden} (rtol={rtol})")
    elif actual != golden:
        problems.append(f"{path}: {actual!r} != {golden!r}")
    return problems


def main(argv: "list[str]") -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("actual", help="freshly produced JSON document")
    parser.add_argument("golden", help="committed golden JSON document")
    parser.add_argument("--rtol", type=float, default=1e-9,
                        help="relative tolerance for float comparisons")
    args = parser.parse_args(argv)
    with open(args.actual) as handle:
        actual = json.load(handle)
    with open(args.golden) as handle:
        golden = json.load(handle)
    problems = diff(actual, golden, args.rtol)
    for problem in problems:
        print(problem)
    if problems:
        print(f"golden compare: {len(problems)} differences vs "
              f"{args.golden}")
        return 1
    print(f"golden compare: ok ({args.golden})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
