"""Tests for the profiler and energy model."""

import pytest

from repro.common import DeviceError
from repro.gpu import A100, EnergyModel, KernelRecord, Profile, T4


def record(name="k", category="matmul", time=1e-3, read=1e6, write=5e5):
    return KernelRecord(
        name=name, category=category, time=time,
        dram_read_bytes=read, dram_write_bytes=write,
        tensor_flops=0.0, cuda_flops=0.0,
        bandwidth_utilization=0.5, bound="memory",
    )


class TestProfile:
    def test_totals(self):
        profile = Profile([record(time=1e-3), record(time=2e-3)])
        assert profile.total_time() == pytest.approx(3e-3)
        assert profile.total_dram_bytes() == pytest.approx(3e6)
        assert profile.total_dram_read_bytes() == pytest.approx(2e6)
        assert profile.total_dram_write_bytes() == pytest.approx(1e6)

    def test_by_category(self):
        profile = Profile([
            record(category="matmul", time=1e-3),
            record(category="softmax", time=3e-3),
            record(category="softmax", time=1e-3),
        ])
        times = profile.time_by_category()
        assert times["softmax"] == pytest.approx(4e-3)
        assert profile.time_fraction("softmax") == pytest.approx(0.8)

    def test_time_fraction_empty(self):
        assert Profile().time_fraction("softmax") == 0.0

    def test_filtered(self):
        profile = Profile([record(category="matmul"),
                           record(category="softmax")])
        assert len(profile.filtered("softmax")) == 1
        assert len(profile.filtered("softmax", "matmul")) == 2

    def test_scaled(self):
        profile = Profile([record(time=1e-3)])
        scaled = profile.scaled(24)
        assert len(scaled) == 24
        assert scaled.total_time() == pytest.approx(24e-3)

    def test_scaled_rejects_zero(self):
        with pytest.raises(DeviceError):
            Profile().scaled(0)

    def test_extend(self):
        a = Profile([record()])
        b = Profile([record(), record()])
        a.extend(b)
        assert len(a) == 3

    def test_add_rejects_negative_time(self):
        profile = Profile()
        with pytest.raises(DeviceError):
            profile.add(record(time=-1.0))

    def test_records_ordered(self):
        profile = Profile([record(name="a"), record(name="b")])
        assert [r.name for r in profile.records] == ["a", "b"]


class TestEnergyModel:
    def test_energy_proportional_to_bytes(self):
        profile = Profile([record(read=1e9, write=0.0)])
        model = EnergyModel(A100)
        assert model.offchip_energy(profile) == pytest.approx(
            1e9 * A100.dram_energy_per_byte
        )

    def test_gddr_costs_more_per_byte(self):
        profile = Profile([record(read=1e9)])
        assert (EnergyModel(T4).offchip_energy(profile)
                > EnergyModel(A100).offchip_energy(profile))

    def test_saving(self):
        baseline = Profile([record(read=2e9, write=0.0)])
        optimized = Profile([record(read=1e9, write=0.0)])
        model = EnergyModel(A100)
        assert model.saving(baseline, optimized) == pytest.approx(0.5)

    def test_saving_empty_baseline(self):
        assert EnergyModel(A100).saving(Profile(), Profile()) == 0.0

    def test_energy_by_category(self):
        profile = Profile([record(category="matmul", read=1e9, write=0.0),
                           record(category="softmax", read=3e9, write=0.0)])
        by_cat = EnergyModel(A100).offchip_energy_by_category(profile)
        assert by_cat["softmax"] == pytest.approx(3 * by_cat["matmul"])


class TestFrozenProfile:
    def test_freeze_rejects_mutation(self):
        profile = Profile([record()])
        assert not profile.frozen
        assert profile.freeze() is profile
        assert profile.frozen
        with pytest.raises(DeviceError):
            profile.add(record())
        with pytest.raises(DeviceError):
            profile.extend(Profile([record()]))

    def test_scaled_copy_is_mutable(self):
        profile = Profile([record()]).freeze()
        copy = profile.scaled(2)
        assert not copy.frozen
        copy.add(record())  # does not raise


class TestDeviceEnergyCache:
    def _device_with_launch(self):
        from repro.gpu import Device
        from repro.gpu.specs import get_gpu
        from repro.kernels.matmul import MatMulKernel

        device = Device(get_gpu("A100"))
        launch = MatMulKernel(batch=2, m=128, n=128, k=64).launch_spec(
            device.spec)
        return device, launch

    def test_reset_clears_cached_energy(self):
        device, launch = self._device_with_launch()
        device.launch(launch)
        assert device.offchip_energy() > 0
        device.reset()
        # The regression: a stale cached energy must not survive reset.
        assert device.offchip_energy() == 0.0

    def test_launch_invalidates_cached_energy(self):
        device, launch = self._device_with_launch()
        device.launch(launch)
        first = device.offchip_energy()
        device.launch(launch)
        assert device.offchip_energy() == pytest.approx(2 * first)

    def test_take_profile_invalidates_cached_energy(self):
        device, launch = self._device_with_launch()
        device.launch(launch)
        assert device.offchip_energy() > 0
        device.take_profile()
        assert device.offchip_energy() == 0.0
