"""Golden equivalence: vectorized kernels vs their reference loops.

The PR-1 fast path replaced per-row / per-tile Python loops with
batched numpy, keeping the original loops as ``*_reference`` methods.
Equivalence is *bit-identical* — the accumulation order per output
element is unchanged — and is checked through the oracle registry
(``repro.verify``): each vectorized/reference pair registers a
``golden``-tagged oracle with the EXACT contract, and the test below
drives every one of them over seeded fuzz cases.  The per-kernel
comparison loops this file used to hand-roll live in the oracles now.

The remaining hand-written tests cover paths with no registered
oracle: the block scatter/gather round trip, the sparse causal
epilogue, token embedding, and the cost-model counters.
"""

import numpy as np
import pytest

from repro.gpu.specs import get_gpu
from repro.models.attention import SDABlock, _causal_block_bias
from repro.sparse.bsflash import BlockSparseFlashAttentionKernel
from repro.sparse.bsmatmul import BlockSparseMatMulDSD
from repro.sparse.layout import BlockSparseLayout, BlockSparseMatrix
from repro.sparse.patterns import (
    bigbird_layout,
    longformer_layout,
    sliding_window_layout,
)

RNG = np.random.default_rng(2022)


def _layouts():
    yield "bigbird", bigbird_layout(512, 64)
    yield "longformer", longformer_layout(512, 64)
    yield "window", sliding_window_layout(256, 64, window_blocks=3)
    # Irregular: hand-built mask with an all-masked (empty) block row
    # and rows of several distinct populations.
    mask = np.zeros((6, 6), dtype=bool)
    mask[0] = True                      # dense row
    mask[1, :2] = True
    mask[3, 2:5] = True
    mask[4, 4] = True
    mask[5, [0, 5]] = True              # row 2 stays empty
    yield "ragged", BlockSparseLayout(mask, 32)


def _golden_oracle_names():
    from repro.verify.oracles import default_registry

    return sorted(o.name for o in default_registry().tagged("golden"))


def test_golden_registry_covers_vectorized_kernels():
    assert {
        "attention.flash_golden",
        "block_sparse.dsd_golden",
        "block_sparse.flash_golden",
        "block_sparse.ir_golden",
    } <= set(_golden_oracle_names())


@pytest.mark.parametrize("oracle_name", _golden_oracle_names())
def test_golden_oracles_bit_identical(oracle_name):
    """Every vectorized/reference pair stays bit-identical (EXACT
    contract) across seeded fuzz cases of its family."""
    from repro.verify.cases import build_case, draw_params
    from repro.verify.fuzz import run_case
    from repro.verify.oracles import default_registry

    oracle = default_registry().get(oracle_name)
    rng = np.random.default_rng(2022)
    checked = 0
    while checked < 25:
        params = draw_params(oracle.family, rng)
        case = build_case(oracle.family, params)
        if not oracle.applicable(case):
            continue
        result = run_case(oracle, case)
        assert not result.failed, (
            f"{oracle_name} on {params}: {result.describe()}"
        )
        checked += 1


@pytest.mark.parametrize("name,layout", list(_layouts()),
                         ids=[n for n, _ in _layouts()])
def test_block_scatter_gather_round_trip(name, layout):
    bs = layout.block_size
    data = RNG.standard_normal(
        (2, layout.nnz_blocks, bs, bs)).astype(np.float32)
    matrix = BlockSparseMatrix(layout, data)
    dense = matrix.to_dense()
    # Reference scatter, block by block.
    expected = np.zeros_like(dense)
    for idx in range(layout.nnz_blocks):
        r = int(layout.block_rows[idx]) * bs
        c = int(layout.block_cols[idx]) * bs
        expected[:, r:r + bs, c:c + bs] = data[:, idx]
    assert np.array_equal(dense, expected)
    back = BlockSparseMatrix.from_dense(dense, layout)
    assert np.array_equal(back.data, data)


def test_sparse_causal_epilogue_matches_per_block_bias():
    from repro.models.config import AttentionKind, AttentionSpec

    spec = AttentionSpec(kind=AttentionKind.LOCAL_CAUSAL, block_size=16,
                         window=64)
    block = SDABlock(batch=1, num_heads=2, seq_len=128, d_head=16,
                     spec=spec, t=16)
    layout = block.layout
    epilogue = block._sparse_epilogue()
    blocks = RNG.standard_normal(
        (2, layout.nnz_blocks, 16, 16)).astype(np.float32)
    # Reference: scale, then add the per-block bias one block at a time.
    scale = np.float32(block.scale)
    expected = blocks * scale
    for idx in range(layout.nnz_blocks):
        expected[:, idx] += _causal_block_bias(layout, idx)
    assert np.array_equal(epilogue(blocks, layout), expected)


def test_embed_tokens_matches_per_token_lookup():
    from repro.workloads.triviaqa import embed_tokens

    tokens = RNG.integers(0, 50, size=(3, 17))
    out = embed_tokens(tokens, 32, seed=5)
    expected = np.empty((3, 17, 32), dtype=np.float32)
    for b in range(3):
        for i in range(17):
            expected[b, i] = (
                np.random.default_rng((5, int(tokens[b, i])))
                .standard_normal(32).astype(np.float32) * 0.02
            )
    assert np.array_equal(out, expected)


@pytest.mark.parametrize("plan", ["baseline", "sdf", "flash"])
def test_counters_unchanged_by_numeric_path(plan):
    """Traffic/FLOP counters come from launch_spec, which the
    vectorized numerics must not perturb."""
    layout = bigbird_layout(512, 64)
    spec = get_gpu("A100")
    kernel = BlockSparseFlashAttentionKernel(layout, 2, 64)
    before = kernel.launch_spec(spec)
    q = RNG.standard_normal((2, layout.seq_len, 64)).astype(np.float32)
    kernel.compute(q, q, q)
    assert kernel.launch_spec(spec) == before

    dsd = BlockSparseMatMulDSD(layout, 2, 64)
    before = dsd.launch_spec(spec)
    data = np.float16(RNG.standard_normal(
        (2, layout.nnz_blocks, 64, 64))).astype(np.float32)
    dsd._multiply(data, q)
    assert dsd.launch_spec(spec) == before
