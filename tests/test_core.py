"""Tests for the core recomposition API: plans, math, online softmax,
and the training backward pass."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common import PlanError, ShapeError
from repro.core import (
    AttentionPlan,
    SoftmaxDecomposition,
    attention_matrix_sweeps,
    decomposed_softmax,
    online_softmax,
    softmax_backward,
)
from repro.core.backward import softmax_jacobian
from repro.core.online import online_softmax_statistics
from repro.kernels.softmax import safe_softmax


class TestPlans:
    @pytest.mark.parametrize("name,plan", [
        ("baseline", AttentionPlan.BASELINE),
        ("sd", AttentionPlan.DECOMPOSED),
        ("SDF", AttentionPlan.RECOMPOSED),
        ("online", AttentionPlan.ONLINE),
    ])
    def test_from_name(self, name, plan):
        assert AttentionPlan.from_name(name) is plan

    def test_from_name_passthrough(self):
        assert AttentionPlan.from_name(AttentionPlan.DECOMPOSED) is (
            AttentionPlan.DECOMPOSED
        )

    def test_unknown_plan(self):
        with pytest.raises(PlanError, match="unknown plan"):
            AttentionPlan.from_name("ring-attention")

    def test_sweep_audit_fig6(self):
        """Fig. 6: 4 sweeps baseline, 6 decomposed, 2 recomposed."""
        assert attention_matrix_sweeps(AttentionPlan.BASELINE) == 4
        assert attention_matrix_sweeps(AttentionPlan.DECOMPOSED) == 6
        assert attention_matrix_sweeps(AttentionPlan.RECOMPOSED) == 2

    def test_recomposition_halves_sweeps(self):
        baseline = attention_matrix_sweeps(AttentionPlan.BASELINE)
        sdf = attention_matrix_sweeps(AttentionPlan.RECOMPOSED)
        assert sdf * 2 == baseline

    def test_uses_decomposition(self):
        assert AttentionPlan.DECOMPOSED.uses_decomposition
        assert AttentionPlan.RECOMPOSED.uses_decomposition
        assert not AttentionPlan.BASELINE.uses_decomposition
        assert not AttentionPlan.ONLINE.uses_decomposition


class TestDecompositionAPI:
    def test_callable_matches_function(self):
        x = np.random.default_rng(0).standard_normal((4, 64))
        dec = SoftmaxDecomposition(t=16)
        np.testing.assert_array_equal(dec(x), decomposed_softmax(x, 16))

    def test_staged_api_matches(self):
        x = np.random.default_rng(1).standard_normal((4, 64))
        dec = SoftmaxDecomposition(t=8)
        x_prime, m_prime, d_prime = dec.local(x)
        r_prime = dec.reduce(m_prime, d_prime)
        np.testing.assert_allclose(
            dec.scale(x_prime, r_prime), safe_softmax(x), rtol=1e-5
        )

    def test_n_subvectors(self):
        assert SoftmaxDecomposition(t=64).n_subvectors(4096) == 64

    def test_n_subvectors_rejects_indivisible(self):
        with pytest.raises(ShapeError):
            SoftmaxDecomposition(t=64).n_subvectors(100)

    def test_rejects_bad_t(self):
        with pytest.raises(Exception):
            SoftmaxDecomposition(t=0)


class TestOnlineSoftmax:
    def test_matches_safe_softmax(self):
        x = np.random.default_rng(2).standard_normal((5, 48)).astype(np.float32)
        np.testing.assert_allclose(
            online_softmax(x), safe_softmax(x), rtol=1e-5, atol=1e-7
        )

    def test_statistics_match_eq1(self):
        x = np.random.default_rng(3).standard_normal((7, 32)).astype(np.float32)
        m, d = online_softmax_statistics(x)
        np.testing.assert_allclose(m, x.max(axis=-1), rtol=1e-6)
        np.testing.assert_allclose(
            d, np.exp(x - x.max(axis=-1, keepdims=True)).sum(axis=-1), rtol=1e-5
        )

    def test_handles_masked_rows(self):
        x = np.array([[0.0, -np.inf, 1.0], [-np.inf, -np.inf, -np.inf]],
                     dtype=np.float32)
        out = online_softmax(x)
        np.testing.assert_allclose(out[0].sum(), 1.0, rtol=1e-6)
        np.testing.assert_array_equal(out[1], 0.0)

    def test_running_max_rescaling(self):
        """Ascending inputs force the running max to grow at every step —
        the rescaling path must stay exact."""
        x = np.arange(32, dtype=np.float32)[None, :] * 3.0
        np.testing.assert_allclose(
            online_softmax(x), safe_softmax(x), rtol=1e-5
        )

    @given(seed=st.integers(0, 2**31 - 1), scale=st.floats(0.1, 30.0))
    @settings(max_examples=40, deadline=None)
    def test_property_matches_safe(self, seed, scale):
        x = (np.random.default_rng(seed).standard_normal((3, 24)) * scale
             ).astype(np.float32)
        np.testing.assert_allclose(
            online_softmax(x), safe_softmax(x), rtol=1e-4, atol=1e-6
        )


class TestBackward:
    def test_matches_jacobian(self):
        rng = np.random.default_rng(4)
        x = rng.standard_normal(16).astype(np.float32)
        y = safe_softmax(x)
        grad_y = rng.standard_normal(16).astype(np.float32)
        np.testing.assert_allclose(
            softmax_backward(y, grad_y), softmax_jacobian(y) @ grad_y,
            rtol=1e-4, atol=1e-6,
        )

    def test_matches_numerical_gradient(self):
        """Finite-difference check of Eq. 3 through a scalar loss.

        The differences are taken in float64 (the library softmax works
        in float32, whose rounding would swamp a 1e-5 step).
        """
        rng = np.random.default_rng(5)
        x = rng.standard_normal(12)
        w = rng.standard_normal(12)

        def softmax64(x_):
            e = np.exp(x_ - x_.max())
            return e / e.sum()

        def loss(x_):
            return float(np.dot(w, softmax64(x_)))

        y = softmax64(x)
        analytic = softmax_backward(y, w)
        eps = 1e-6
        numeric = np.array([
            (loss(x + eps * np.eye(12)[i]) - loss(x - eps * np.eye(12)[i]))
            / (2 * eps)
            for i in range(12)
        ])
        np.testing.assert_allclose(analytic, numeric, rtol=1e-4, atol=1e-7)

    def test_gradient_rows_sum_to_zero(self):
        """Softmax output is shift-invariant, so dL/dx sums to zero."""
        rng = np.random.default_rng(6)
        y = safe_softmax(rng.standard_normal((4, 32)))
        g = softmax_backward(y, rng.standard_normal((4, 32)).astype(np.float32))
        np.testing.assert_allclose(g.sum(axis=-1), 0.0, atol=1e-5)

    def test_decomposed_forward_feeds_same_backward(self):
        """Section 6: recomposition changes the forward *schedule*, not
        the output, so training gradients are unchanged."""
        rng = np.random.default_rng(7)
        x = rng.standard_normal((3, 64)).astype(np.float32)
        grad_y = rng.standard_normal((3, 64)).astype(np.float32)
        y_mono = safe_softmax(x)
        y_dec = decomposed_softmax(x, 16)
        np.testing.assert_allclose(
            softmax_backward(y_dec, grad_y),
            softmax_backward(y_mono, grad_y),
            rtol=1e-4, atol=1e-6,
        )

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            softmax_backward(np.zeros((2, 4)), np.zeros((2, 5)))
        with pytest.raises(ShapeError):
            softmax_jacobian(np.zeros((2, 4)))
