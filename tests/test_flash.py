"""Tests for the FlashAttention-style tiled online-softmax kernel."""

import numpy as np
import pytest

from repro.common import DType, PlanError
from repro.gpu import A100, Device
from repro.gpu.costmodel import time_kernel
from repro.kernels.flash import (
    FlashAttentionKernel,
    TILE_KV,
    TILE_Q,
    flash_shared_mem,
)
from repro.models import AttentionKind, AttentionSpec, SDABlock


def make_qkv(bh, length, d, seed=0):
    rng = np.random.default_rng(seed)
    return tuple(rng.standard_normal((bh, length, d)).astype(np.float32)
                 for _ in range(3))


class TestNumerics:
    def test_matches_baseline(self):
        q, k, v = make_qkv(4, 320, 16)
        kernel = FlashAttentionKernel(4, 320, 16, scale=0.25)
        block = SDABlock(batch=2, num_heads=2, seq_len=320, d_head=16,
                         spec=AttentionSpec(kind=AttentionKind.DENSE),
                         plan="baseline")
        np.testing.assert_allclose(
            kernel.compute(q, k, v), block.forward(q, k, v), atol=5e-3
        )

    def test_partial_tiles(self):
        """Lengths not divisible by the tile sizes still work."""
        length = TILE_Q + 37
        q, k, v = make_qkv(2, length, 8, seed=1)
        kernel = FlashAttentionKernel(2, length, 8, scale=1.0,
                                      dtype=DType.FP32)
        from repro.kernels.softmax import safe_softmax

        scores = np.matmul(q, np.swapaxes(k, 1, 2), dtype=np.float32)
        expected = np.matmul(safe_softmax(scores), v, dtype=np.float32)
        np.testing.assert_allclose(kernel.compute(q, k, v), expected,
                                   atol=1e-4)

    def test_causal(self):
        q, k, v = make_qkv(2, 2 * TILE_KV, 8, seed=2)
        flash = FlashAttentionKernel(2, 2 * TILE_KV, 8, scale=1.0,
                                     causal=True, dtype=DType.FP32)
        out = flash.compute(q, k, v)
        # Token 0 attends only to itself.
        np.testing.assert_allclose(out[:, 0], v[:, 0], atol=1e-5)
        # And future V changes must not leak backwards.
        v2 = v.copy()
        v2[:, -1] += 100
        out2 = flash.compute(q, k, v2)
        np.testing.assert_array_equal(out[:, 0], out2[:, 0])

    def test_rescaling_exercised(self):
        """Force the running max to grow across K/V tiles (ascending
        logits) — the correction factors must stay exact."""
        bh, length, d = 1, 3 * TILE_KV, 4
        q = np.ones((bh, length, d), dtype=np.float32)
        k = np.linspace(0, 3, length, dtype=np.float32)[None, :, None] \
            * np.ones((bh, length, d), dtype=np.float32)
        v = np.random.default_rng(3).standard_normal(
            (bh, length, d)).astype(np.float32)
        kernel = FlashAttentionKernel(bh, length, d, scale=1.0,
                                      dtype=DType.FP32)
        from repro.kernels.softmax import safe_softmax

        scores = np.matmul(q, np.swapaxes(k, 1, 2), dtype=np.float32)
        expected = np.matmul(safe_softmax(scores), v, dtype=np.float32)
        np.testing.assert_allclose(kernel.compute(q, k, v), expected,
                                   rtol=1e-4, atol=1e-5)


class TestCost:
    def test_zero_attention_traffic(self):
        kernel = FlashAttentionKernel(16, 4096, 64)
        launch = kernel.launch_spec(A100)
        assert launch.dram_bytes == 4 * 16 * 4096 * 64 * 2

    def test_shared_mem_independent_of_length(self):
        """Unlike the fused MHA kernel, FlashAttention scales to any L."""
        short = FlashAttentionKernel(16, 512, 64).launch_spec(A100)
        long = FlashAttentionKernel(16, 65536, 64).launch_spec(A100)
        assert short.tb.shared_mem == long.tb.shared_mem
        assert long.tb.shared_mem == flash_shared_mem(64)

    def test_compute_bound_at_long_length(self):
        kernel = FlashAttentionKernel(16, 4096, 64)
        timing = time_kernel(A100, kernel.launch_spec(A100))
        assert timing.bound == "compute"

    def test_causal_halves_compute(self):
        dense = FlashAttentionKernel(16, 4096, 64).launch_spec(A100)
        causal = FlashAttentionKernel(16, 4096, 64,
                                      causal=True).launch_spec(A100)
        assert causal.tensor_flops == pytest.approx(dense.tensor_flops / 2)


class TestPositioning:
    def test_flash_beats_sdf_everywhere(self):
        """The forward-looking result: eliminating the remaining two
        sweeps beats recomposition at every length."""
        for seq_len in (1024, 4096, 16384):
            times = {}
            for plan in ("baseline", "sdf", "flash"):
                device = Device("A100")
                SDABlock(batch=1, num_heads=16, seq_len=seq_len, d_head=64,
                         spec=AttentionSpec(kind=AttentionKind.DENSE),
                         plan=plan).simulate(device)
                times[plan] = device.profile.total_time()
            assert times["flash"] < times["sdf"] < times["baseline"], seq_len

    def test_plan_integration_end_to_end(self):
        from repro.models import InferenceSession

        base = InferenceSession("bert-large", plan="baseline").simulate()
        flash = InferenceSession("bert-large", plan="flash").simulate()
        sdf = InferenceSession("bert-large", plan="sdf").simulate()
        assert flash.total_time < sdf.total_time < base.total_time

    def test_rejected_for_cross_attention(self):
        with pytest.raises(PlanError):
            SDABlock(batch=1, num_heads=2, seq_len=128, kv_seq_len=256,
                     d_head=16,
                     spec=AttentionSpec(kind=AttentionKind.DENSE),
                     plan="flash")
