"""Tests for the roofline kernel cost model."""

import pytest

from repro.common import GIB, KernelError
from repro.gpu import A100, Device, KernelLaunch, T4, TBResources, WorkloadShape
from repro.gpu.costmodel import (
    MLP_MATMUL,
    MLP_REDUCTION,
    MLP_STREAMING,
    bandwidth_utilization,
    time_kernel,
)
from repro.gpu.occupancy import compute_occupancy


def streaming_launch(bytes_total=1 * GIB, issue_fraction=1.0, grid=100_000):
    return KernelLaunch(
        name="stream",
        category="elementwise",
        tb=TBResources(threads=256),
        shape=WorkloadShape(grid=grid),
        dram_read_bytes=bytes_total / 2,
        dram_write_bytes=bytes_total / 2,
        cuda_flops=1.0,
        bytes_in_flight_per_warp=MLP_STREAMING,
        issue_fraction=issue_fraction,
    )


class TestMemoryBound:
    def test_streaming_kernel_near_peak(self):
        """A fully occupied streaming kernel sustains ~streaming efficiency."""
        timing = time_kernel(A100, streaming_launch())
        assert timing.bound == "memory"
        assert timing.bandwidth_utilization == pytest.approx(
            A100.streaming_efficiency, rel=0.01
        )

    def test_memory_time_matches_bytes_over_bandwidth(self):
        launch = streaming_launch(bytes_total=2 * GIB)
        timing = time_kernel(A100, launch)
        expected = (2 * GIB) / (A100.mem_bandwidth * timing.bandwidth_utilization)
        assert timing.memory_time == pytest.approx(expected)

    def test_low_issue_fraction_collapses_utilization(self):
        """The paper's sparse-softmax effect: idle warps kill bandwidth.

        A row-reduction kernel (low per-warp MLP) whose thread blocks
        are sized for worst-case dense rows (low issue fraction) runs
        far below peak bandwidth; the same kernel with every warp
        issuing saturates.
        """

        def reduction(issue_fraction):
            return KernelLaunch(
                name="rowsoftmax",
                category="softmax",
                tb=TBResources(threads=1024),
                shape=WorkloadShape(grid=100_000),
                dram_read_bytes=GIB / 2,
                dram_write_bytes=GIB / 2,
                bytes_in_flight_per_warp=MLP_REDUCTION,
                issue_fraction=issue_fraction,
            )

        full = time_kernel(A100, reduction(1.0))
        sparse = time_kernel(A100, reduction(0.0625))
        assert sparse.bandwidth_utilization < 0.15 * full.bandwidth_utilization
        assert sparse.time > 5 * full.time

    def test_reduction_mlp_needs_more_warps(self):
        """Lower per-warp MLP raises the warp count needed to saturate,
        so at reduced occupancy the reduction kernel loses more."""
        tb = TBResources(threads=256, shared_mem=40 * 1024)  # 4 TBs/SM
        common = dict(
            name="k",
            category="softmax",
            tb=tb,
            shape=WorkloadShape(grid=100_000),
            dram_read_bytes=GIB,
        )
        base = KernelLaunch(bytes_in_flight_per_warp=MLP_STREAMING, **common)
        reduction = KernelLaunch(bytes_in_flight_per_warp=MLP_REDUCTION, **common)
        occ = compute_occupancy(A100, tb)
        util_base = bandwidth_utilization(A100, base, occ)
        util_red = bandwidth_utilization(A100, reduction, occ)
        assert util_red < util_base

    def test_tiny_grid_cannot_saturate(self):
        small = time_kernel(A100, streaming_launch(grid=10))
        large = time_kernel(A100, streaming_launch(grid=100_000))
        assert small.bandwidth_utilization < large.bandwidth_utilization


class TestComputeBound:
    def make_matmul(self, tensor_flops):
        return KernelLaunch(
            name="gemm",
            category="matmul",
            tb=TBResources(threads=256, shared_mem=48 * 1024),
            shape=WorkloadShape(grid=10_000),
            dram_read_bytes=1e6,
            dram_write_bytes=1e6,
            tensor_flops=tensor_flops,
            bytes_in_flight_per_warp=MLP_MATMUL,
        )

    def test_large_gemm_is_compute_bound(self):
        timing = time_kernel(A100, self.make_matmul(1e12))
        assert timing.bound == "compute"

    def test_compute_time_scales_linearly(self):
        t1 = time_kernel(A100, self.make_matmul(1e12)).compute_time
        t2 = time_kernel(A100, self.make_matmul(2e12)).compute_time
        assert t2 == pytest.approx(2 * t1)

    def test_compute_time_uses_tensor_peak(self):
        timing = time_kernel(A100, self.make_matmul(1e12))
        ideal = 1e12 / (A100.fp16_tensor_flops * A100.compute_efficiency)
        assert timing.compute_time == pytest.approx(ideal, rel=0.01)


class TestImbalance:
    def make(self, grid, max_work):
        return KernelLaunch(
            name="bs",
            category="matmul",
            tb=TBResources(threads=256),
            shape=WorkloadShape(grid=grid, mean_work=1.0, max_work=max_work),
            dram_read_bytes=1e9,
        )

    def test_balanced_work_no_penalty(self):
        timing = time_kernel(A100, self.make(grid=10_000, max_work=1.0))
        assert timing.imbalance_penalty == pytest.approx(1.0)

    def test_imbalance_penalizes_small_grids(self):
        small = time_kernel(A100, self.make(grid=1_000, max_work=8.0))
        large = time_kernel(A100, self.make(grid=400_000, max_work=8.0))
        assert small.imbalance_penalty > large.imbalance_penalty
        assert large.imbalance_penalty < 1.1

    def test_penalty_at_least_one(self):
        for grid in (1, 100, 10_000, 1_000_000):
            timing = time_kernel(A100, self.make(grid=grid, max_work=4.0))
            assert timing.imbalance_penalty >= 1.0


class TestValidation:
    def test_rejects_bad_issue_fraction(self):
        with pytest.raises(KernelError):
            streaming_launch(issue_fraction=0.0)
        with pytest.raises(KernelError):
            streaming_launch(issue_fraction=1.5)

    def test_rejects_negative_traffic(self):
        with pytest.raises(Exception):
            KernelLaunch(
                name="bad",
                category="x",
                tb=TBResources(threads=128),
                shape=WorkloadShape(grid=1),
                dram_read_bytes=-1.0,
            )

    def test_rejects_max_work_below_mean(self):
        with pytest.raises(KernelError):
            WorkloadShape(grid=10, mean_work=2.0, max_work=1.0)


class TestDevice:
    def test_device_records_launches(self):
        device = Device("A100")
        device.launch(streaming_launch())
        device.launch(streaming_launch())
        assert len(device.profile) == 2
        assert device.profile.total_time() > 0

    def test_device_by_spec(self):
        device = Device(T4)
        assert device.spec.name == "T4"

    def test_take_profile_resets(self):
        device = Device("A100")
        device.launch(streaming_launch())
        profile = device.take_profile()
        assert len(profile) == 1
        assert len(device.profile) == 0

    def test_energy_accounting(self):
        device = Device("A100")
        device.launch(streaming_launch(bytes_total=1e9))
        assert device.offchip_energy() == pytest.approx(
            1e9 * A100.dram_energy_per_byte
        )

    def test_t4_slower_than_a100_on_same_stream(self):
        a100, t4 = Device("A100"), Device("T4")
        ta = a100.launch(streaming_launch()).time
        tt = t4.launch(streaming_launch()).time
        assert tt > 3 * ta  # bandwidth ratio is ~4.9x
