"""Tests for the discrete-event serving simulator.

Covers the serving-level invariants the subsystem promises:
determinism under a fixed seed, request conservation (every admitted
request finishes, possibly after preemption), KV-block conservation
(allocations return to the free pool), and the no-over-commit
guarantee of the memory manager.
"""

import dataclasses
import json

import pytest

from repro.common.dtypes import DType
from repro.common.errors import ConfigError, ServingError
from repro.gpu.specs import get_gpu
from repro.models.config import get_model
from repro.models.footprint import weight_bytes
from repro.serving import (
    ContinuousBatchingScheduler,
    KVBlockManager,
    Request,
    RequestStatus,
    ServingSimulator,
    ServingWorkload,
    StepCostModel,
    load_trace,
    simulate_serving,
)


def tiny_gpu(model_name="bert-large", blocks=24, block_tokens=64,
             reserve_fraction=0.1):
    """An A100 variant whose HBM holds the weights plus ~``blocks``
    KV blocks — small enough to force admission queuing/preemption."""
    model = get_model(model_name)
    bytes_per_token = 2 * model.num_layers * model.d_model * 2
    pool = blocks * block_tokens * bytes_per_token
    weights = weight_bytes(model, DType.FP16)
    hbm = int((pool + weights) / (1 - reserve_fraction)) + 1
    return dataclasses.replace(get_gpu("a100"), hbm_bytes=hbm)


class TestWorkload:
    def test_deterministic(self):
        a = ServingWorkload(rate=4.0, duration=8.0, seed=7).requests()
        b = ServingWorkload(rate=4.0, duration=8.0, seed=7).requests()
        assert [(r.arrival_time, r.prompt_len, r.output_len) for r in a] \
            == [(r.arrival_time, r.prompt_len, r.output_len) for r in b]

    def test_seed_changes_stream(self):
        a = ServingWorkload(rate=4.0, duration=8.0, seed=0).requests()
        b = ServingWorkload(rate=4.0, duration=8.0, seed=1).requests()
        assert [r.arrival_time for r in a] != [r.arrival_time for r in b]

    def test_shapes(self):
        requests = ServingWorkload(rate=8.0, duration=10.0, seed=0,
                                   max_prompt=2048).requests()
        assert requests
        assert all(r.prompt_len % 64 == 0 for r in requests)
        assert all(r.prompt_len <= 2048 for r in requests)
        assert all(r.output_len >= 1 for r in requests)
        arrivals = [r.arrival_time for r in requests]
        assert arrivals == sorted(arrivals)
        assert arrivals[-1] < 10.0

    def test_trace_roundtrip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            '{"arrival_time": 0.5, "prompt_len": 100, "output_len": 4}\n'
            '{"arrival_time": 0.1, "prompt_len": 64, "output_len": 2}\n'
        )
        requests = load_trace(str(path))
        assert [r.arrival_time for r in requests] == [0.1, 0.5]
        assert requests[1].prompt_len == 128  # rounded up to blocks

    def test_trace_driven_report_counts_loaded_requests(self, tmp_path):
        """Regression: a trace-driven run used to report
        ``num_requests=0`` — the counter only ticked along the
        synthetic-workload path.  The count must reflect the loaded
        stream, even when no plan runs at all."""
        from repro.serving import simulate_serving

        path = tmp_path / "trace.jsonl"
        path.write_text("".join(
            '{"arrival_time": %.1f, "prompt_len": 64, "output_len": 2}\n'
            % (0.1 * i) for i in range(3)))
        requests = load_trace(str(path))
        report = simulate_serving("bert-large", "a100", rate=1.0,
                                  duration=1.0, plans=("sdf",),
                                  requests=requests)
        assert report.num_requests == 3
        empty = simulate_serving("bert-large", "a100", rate=1.0,
                                 duration=1.0, plans=(),
                                 requests=requests)
        assert empty.num_requests == 3

    def test_trace_bad_record(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"arrival_time": 0.1}\n')
        with pytest.raises(ServingError, match="bad trace record"):
            load_trace(str(path))


class TestKVBlockManager:
    def manager(self, blocks=10):
        return KVBlockManager(capacity_bytes=blocks * 64 * 1024,
                              block_tokens=64, bytes_per_token=1024)

    def test_grow_and_release(self):
        mgr = self.manager()
        assert mgr.grow(1, 100) == 2      # ceil(100/64)
        assert mgr.grow(1, 100) == 0      # idempotent
        assert mgr.grow(1, 129) == 1      # one more block
        assert mgr.used_blocks == 3
        assert mgr.release(1) == 3
        assert mgr.used_blocks == 0

    def test_over_commit_raises(self):
        mgr = self.manager(blocks=2)
        mgr.grow(1, 128)
        with pytest.raises(ServingError, match="over-commit"):
            mgr.grow(2, 64)
        assert mgr.used_blocks == 2       # failed grow changed nothing

    def test_double_free_raises(self):
        mgr = self.manager()
        mgr.grow(1, 64)
        mgr.release(1)
        with pytest.raises(ServingError, match="double free"):
            mgr.release(1)

    def test_peak_tracking(self):
        mgr = self.manager()
        mgr.grow(1, 64 * 4)
        mgr.release(1)
        mgr.grow(2, 64)
        assert mgr.peak_blocks == 4
        assert mgr.stats().peak_bytes == 4 * 64 * 1024

    def test_fits_at_all(self):
        mgr = self.manager(blocks=10)
        assert mgr.fits_at_all(640)
        assert not mgr.fits_at_all(641)

    def test_for_model_capacity(self):
        model = get_model("bert-large")
        gpu = get_gpu("a100")
        mgr = KVBlockManager.for_model(model, gpu)
        pool = mgr.total_blocks * mgr.block_bytes
        assert pool <= gpu.hbm_bytes - weight_bytes(model, DType.FP16)
        assert mgr.bytes_per_token == 2 * model.num_layers * model.d_model * 2

    def test_too_small_pool_raises(self):
        with pytest.raises(ServingError):
            KVBlockManager(capacity_bytes=100, block_tokens=64,
                           bytes_per_token=1024)


class TestScheduler:
    def drive(self, scheduler, requests, max_steps=10_000):
        for request in requests:
            scheduler.submit(request)
        now, steps = 0.0, 0
        while scheduler.has_work:
            step = scheduler.schedule(now)
            assert not step.is_empty
            now += 0.01
            scheduler.complete_step(step, now)
            steps += 1
            assert steps < max_steps
        return steps

    def test_conservation_blocks_and_requests(self):
        mgr = KVBlockManager(capacity_bytes=24 * 64 * 1024,
                             block_tokens=64, bytes_per_token=1024)
        sched = ContinuousBatchingScheduler(mgr, chunk_tokens=256,
                                            max_batch=8)
        requests = [Request(request_id=i, arrival_time=0.0,
                            prompt_len=512, output_len=64)
                    for i in range(6)]
        self.drive(sched, requests)
        assert all(r.status is RequestStatus.FINISHED for r in requests)
        assert all(r.generated == r.output_len for r in requests)
        assert mgr.used_blocks == 0          # every block returned
        assert mgr.peak_blocks <= mgr.total_blocks

    def test_preemption_recovers(self):
        # 24-block pool, three 8-block prompts admitted back-to-back:
        # decode growth must preempt and every request still finishes.
        mgr = KVBlockManager(capacity_bytes=24 * 64 * 1024,
                             block_tokens=64, bytes_per_token=1024)
        sched = ContinuousBatchingScheduler(mgr, chunk_tokens=512,
                                            max_batch=8)
        requests = [Request(request_id=i, arrival_time=0.0,
                            prompt_len=512, output_len=80)
                    for i in range(3)]
        self.drive(sched, requests)
        assert sched.preemption_events > 0
        assert all(r.status is RequestStatus.FINISHED for r in requests)
        assert all(r.generated == r.output_len for r in requests)
        assert mgr.used_blocks == 0
        preempted = [r for r in requests if r.preemptions]
        assert preempted
        # Recompute covers the prompt plus any pre-eviction tokens.
        assert all(r.prefill_target >= r.prompt_len for r in preempted)

    def test_rejects_impossible_request(self):
        mgr = KVBlockManager(capacity_bytes=4 * 64 * 1024,
                             block_tokens=64, bytes_per_token=1024)
        sched = ContinuousBatchingScheduler(mgr)
        giant = Request(request_id=0, arrival_time=0.0,
                        prompt_len=64 * 64, output_len=4)
        assert not sched.submit(giant)
        assert giant.status is RequestStatus.REJECTED
        assert not sched.has_work

    def test_single_token_output_finishes_at_prefill(self):
        mgr = KVBlockManager(capacity_bytes=24 * 64 * 1024,
                             block_tokens=64, bytes_per_token=1024)
        sched = ContinuousBatchingScheduler(mgr, chunk_tokens=512)
        request = Request(request_id=0, arrival_time=0.0,
                          prompt_len=128, output_len=1)
        self.drive(sched, [request])
        assert request.status is RequestStatus.FINISHED
        assert request.first_token_time == request.finish_time
        assert request.tpot == 0.0

    def test_chunk_must_align_to_blocks(self):
        mgr = KVBlockManager(capacity_bytes=24 * 64 * 1024,
                             block_tokens=64, bytes_per_token=1024)
        with pytest.raises(ServingError, match="multiple"):
            ContinuousBatchingScheduler(mgr, chunk_tokens=100)


class TestStepCostModel:
    def test_unsupported_plan(self):
        with pytest.raises(ServingError, match="supports plans"):
            StepCostModel("bert-large", "a100", plan="flash")

    def test_empty_step_is_free(self):
        cost = StepCostModel("bert-large", "a100")
        assert cost.step_time() == 0.0

    def test_memoization(self):
        cost = StepCostModel("bert-large", "a100")
        cost.step_time(prefill=[(512, 512)], decode_kv=[100, 130])
        sizes = cost.cache_sizes()
        # 100 and 130 share the 128-bucket... no: 100→128, 130→192.
        cost.step_time(prefill=[(512, 512)], decode_kv=[101, 140])
        assert cost.cache_sizes() == sizes   # same buckets, no new entries

    def test_recomposed_prefill_is_faster(self):
        base = StepCostModel("bert-large", "a100", plan="baseline")
        sdf = StepCostModel("bert-large", "a100", plan="sdf")
        chunk = base.step_time(prefill=[(512, 4096)])
        assert sdf.step_time(prefill=[(512, 4096)]) < chunk

    def test_decode_is_plan_invariant(self):
        # m=1 attention has no softmax recomposition opportunity.
        base = StepCostModel("bert-large", "a100", plan="baseline")
        sdf = StepCostModel("bert-large", "a100", plan="sdf")
        assert sdf.step_time(decode_kv=[512]) \
            == pytest.approx(base.step_time(decode_kv=[512]))


class TestSimulator:
    def test_deterministic_reports(self):
        def run():
            report = simulate_serving("bert-large", "a100", rate=4.0,
                                      duration=4.0, seed=3)
            return json.dumps(report.to_json(), sort_keys=True)
        assert run() == run()

    def test_conservation_and_no_over_commit(self):
        report = simulate_serving("bert-large", "a100", rate=6.0,
                                  duration=6.0, seed=1)
        for plan in report.plans.values():
            assert plan.finished + plan.rejected == plan.num_requests
            assert plan.rejected == 0
            assert plan.kv_peak_blocks <= plan.kv_total_blocks
            assert plan.kv_peak_bytes <= get_gpu("a100").hbm_bytes
            assert plan.makespan >= plan.busy_time > 0
            assert plan.ttft.p50 > 0
            assert plan.tpot.p99 >= plan.tpot.p50 >= 0

    def test_fused_sustains_higher_throughput_at_saturation(self):
        report = simulate_serving("bert-large", "a100", rate=8.0,
                                  duration=30.0, seed=0)
        base = report.plans["baseline"]
        sdf = report.plans["sdf"]
        # Saturated: the engine is still draining after arrivals stop.
        assert base.makespan > 30.0
        assert sdf.throughput_tokens_per_s > base.throughput_tokens_per_s
        assert report.speedup() > 1.0

    def test_preemption_under_tight_memory(self):
        gpu = tiny_gpu(blocks=40)
        requests = [Request(request_id=i, arrival_time=0.0,
                            prompt_len=512, output_len=96)
                    for i in range(5)]
        report = ServingSimulator("bert-large", gpu, plan="sdf",
                                  requests=requests, max_batch=8).run()
        assert report.finished == 5
        assert report.preemption_events > 0
        assert report.kv_peak_blocks <= report.kv_total_blocks

    def test_run_is_repeatable(self):
        requests = [Request(request_id=0, arrival_time=0.0,
                            prompt_len=256, output_len=8)]
        sim = ServingSimulator("bert-large", "a100", requests=requests)
        first = sim.run()
        second = sim.run()
        assert first == second
        # The caller's request objects stay untouched.
        assert requests[0].status is RequestStatus.WAITING

    def test_requires_exactly_one_source(self):
        with pytest.raises(ServingError, match="exactly one"):
            ServingSimulator("bert-large", "a100")


class TestHBMSpec:
    def test_all_gpus_have_hbm(self):
        for name in ("a100", "rtx3090", "t4", "v100", "h100"):
            gpu = get_gpu(name)
            assert gpu.hbm_bytes > gpu.l2_size

    def test_hbm_must_exceed_l2(self):
        gpu = get_gpu("a100")
        with pytest.raises(ConfigError):
            dataclasses.replace(gpu, hbm_bytes=gpu.l2_size)
        with pytest.raises(ConfigError):
            dataclasses.replace(gpu, hbm_bytes=0)


class TestGenerationHBM:
    def test_kv_cache_fraction(self):
        from repro.models.generation import GenerationSession

        result = GenerationSession("gpt-neo-1.3b", gpu="a100",
                                   prompt_len=1024,
                                   generated_tokens=8).simulate()
        expected = result.kv_cache_bytes / get_gpu("a100").hbm_bytes
        assert result.kv_cache_fraction == pytest.approx(expected)
        assert 0 < result.kv_cache_fraction < 1

    def test_session_rejects_oversized_kv(self):
        from repro.models.generation import GenerationSession

        gpu = tiny_gpu("gpt-neo-1.3b", blocks=4)
        with pytest.raises(ConfigError, match="exceeding"):
            GenerationSession("gpt-neo-1.3b", gpu=gpu,
                              prompt_len=2048, generated_tokens=64)
