"""Tests for the device-memory footprint model."""

import pytest

from repro.common import DType
from repro.models import BERT_LARGE, BIGBIRD_LARGE, GPT_NEO_1_3B
from repro.models.footprint import (
    inference_footprint,
    weight_bytes,
)


class TestWeights:
    def test_bert_large_parameter_count(self):
        """BERT-large encoder stack: ~303M transformer parameters
        (24 x (4 x 1024^2 + 2 x 1024 x 4096 + biases))."""
        params = weight_bytes(BERT_LARGE, DType.FP32) / 4
        assert params == pytest.approx(304e6, rel=0.02)

    def test_gpt_neo_larger(self):
        assert weight_bytes(GPT_NEO_1_3B) > 3 * weight_bytes(BERT_LARGE)

    def test_fp16_halves_bytes(self):
        assert weight_bytes(BERT_LARGE, DType.FP16) * 2 == weight_bytes(
            BERT_LARGE, DType.FP32
        )


class TestAttentionFootprint:
    def test_bert_512mb_claim(self):
        """Section 2.3: 'the attention matrix is 512MB in size for a
        single batch' (BERT-large, L=4096, fp16) — 512 MiB = 537 MB."""
        fp = inference_footprint(BERT_LARGE, seq_len=4096, plan="baseline")
        one_matrix = fp.attention / 2  # baseline holds X and Y
        assert one_matrix == 16 * 4096 * 4096 * 2

    def test_dense_quadratic_in_length(self):
        f1 = inference_footprint(BERT_LARGE, seq_len=2048).attention
        f2 = inference_footprint(BERT_LARGE, seq_len=4096).attention
        assert f2 == pytest.approx(4 * f1)

    def test_sparse_linear_in_length(self):
        """Section 2.2: sparse attention reduces the memory complexity
        from O(L^2) to O(L)."""
        f1 = inference_footprint(BIGBIRD_LARGE, seq_len=2048).attention
        f2 = inference_footprint(BIGBIRD_LARGE, seq_len=8192).attention
        assert f2 < 6 * f1  # ~4x for 4x length, far from the 16x of dense

    def test_sparse_much_smaller_than_dense(self):
        dense = inference_footprint(BERT_LARGE, seq_len=4096).attention
        sparse = inference_footprint(BIGBIRD_LARGE, seq_len=4096).attention
        assert sparse < 0.25 * dense

    def test_recomposition_halves_attention_memory(self):
        """SDF materialises only X' — a side benefit of the fusion."""
        base = inference_footprint(BERT_LARGE, seq_len=4096, plan="baseline")
        sdf = inference_footprint(BERT_LARGE, seq_len=4096, plan="sdf")
        assert sdf.attention == base.attention // 2
        assert sdf.total < base.total

    def test_sd_keeps_two_matrices_plus_stats(self):
        base = inference_footprint(BERT_LARGE, seq_len=4096, plan="baseline")
        sd = inference_footprint(BERT_LARGE, seq_len=4096, plan="sd")
        assert sd.attention == base.attention
        assert sd.intermediates > 0
        assert base.intermediates == 0

    def test_intermediates_are_one_over_t_scale(self):
        sdf = inference_footprint(BERT_LARGE, seq_len=4096, plan="sdf", t=64)
        # 3 fp32 scalars per 64 fp16 elements.
        assert sdf.intermediates / sdf.attention == pytest.approx(
            12 / 128, rel=0.01
        )

    def test_batch_scales_attention(self):
        b1 = inference_footprint(BERT_LARGE, seq_len=2048, batch=1)
        b4 = inference_footprint(BERT_LARGE, seq_len=2048, batch=4)
        assert b4.attention == 4 * b1.attention
        assert b4.weights == b1.weights

    def test_total_sums_components(self):
        fp = inference_footprint(BERT_LARGE, seq_len=1024)
        assert fp.total == (fp.weights + fp.activations + fp.attention
                            + fp.intermediates)
