"""Tests for the fused MatMul+LS and GS+MatMul kernels (Section 3.3)."""

import numpy as np
import pytest

from repro.common import DType, ShapeError
from repro.gpu import A100
from repro.kernels import (
    FusedGSMatMulKernel,
    FusedMatMulLSKernel,
    InterReductionKernel,
    MatMulKernel,
    RowSoftmaxKernel,
)
from repro.kernels.matmul import attention_score_matmul, attention_value_matmul


def attention_reference(q, k, v, scale):
    """Baseline pipeline: MatMul -> scale -> softmax -> MatMul, fp16."""
    batch, m, d = q.shape
    score = MatMulKernel(batch=batch, m=m, n=m, k=d, dtype=DType.FP16,
                         epilogue=lambda x: x * scale)
    soft = RowSoftmaxKernel(rows=batch * m, length=m, dtype=DType.FP16)
    value = MatMulKernel(batch=batch, m=m, n=d, k=m, dtype=DType.FP16)
    return value.compute(soft.compute(score.compute(q, np.swapaxes(k, 1, 2))),
                         v)


def attention_fused(q, k, v, scale, t):
    """SDF pipeline: (MatMul+LS) -> IR -> (GS+MatMul), fp16."""
    batch, m, d = q.shape
    qk_ls = FusedMatMulLSKernel(
        batch=batch, m=m, n=m, k=d, t=t, dtype=DType.FP16,
        pre_softmax_epilogue=lambda x: x * scale,
        pre_softmax_flops_per_element=1.0,
    )
    ir = InterReductionKernel(rows=batch * m, mean_subvectors=m // t)
    gs_av = FusedGSMatMulKernel(batch=batch, m=m, n=d, k=m, t=t,
                                dtype=DType.FP16)
    x_prime, m_prime, d_prime = qk_ls.compute(q, np.swapaxes(k, 1, 2))
    r_prime = ir.compute(m_prime, d_prime)
    return gs_av.compute(x_prime, r_prime, v)


class TestFusedNumerics:
    @pytest.mark.parametrize("t", [16, 32, 64])
    def test_fused_equals_baseline(self, t):
        r = np.random.default_rng(9)
        q = r.standard_normal((2, 64, 16)).astype(np.float32)
        k = r.standard_normal((2, 64, 16)).astype(np.float32)
        v = r.standard_normal((2, 64, 16)).astype(np.float32)
        scale = 1.0 / np.sqrt(16)
        baseline = attention_reference(q, k, v, scale)
        fused = attention_fused(q, k, v, scale, t)
        # fp16 storage rounding differs slightly between the two orders.
        np.testing.assert_allclose(fused, baseline, atol=5e-3, rtol=5e-3)

    def test_fused_ls_outputs_local_statistics(self):
        r = np.random.default_rng(10)
        q = r.standard_normal((1, 32, 8)).astype(np.float32)
        k = r.standard_normal((1, 32, 8)).astype(np.float32)
        kernel = FusedMatMulLSKernel(batch=1, m=32, n=32, k=8, t=8)
        x_prime, m_prime, d_prime = kernel.compute(q, np.swapaxes(k, 1, 2))
        assert x_prime.shape == (1, 32, 32)
        assert m_prime.shape == (1, 32, 4)
        assert d_prime.shape == (1, 32, 4)
        # Locally normalised sub-vectors each sum to 1.
        sums = x_prime.reshape(1, 32, 4, 8).sum(axis=-1)
        np.testing.assert_allclose(sums, 1.0, atol=2e-2)

    def test_gs_matmul_rejects_bad_r_shape(self):
        kernel = FusedGSMatMulKernel(batch=1, m=16, n=8, k=16, t=4)
        with pytest.raises(ShapeError):
            kernel.compute(
                np.zeros((1, 16, 16)), np.zeros((1, 16, 2)), np.zeros((1, 16, 8))
            )

    def test_t_must_divide_row_length(self):
        with pytest.raises(ShapeError):
            FusedMatMulLSKernel(batch=1, m=16, n=30, k=8, t=8)
        with pytest.raises(ShapeError):
            FusedGSMatMulKernel(batch=1, m=16, n=8, k=30, t=8)


class TestFusedTraffic:
    """Fig. 6: fusion halves attention-matrix off-chip accesses."""

    BH, L, D, T = 16, 4096, 64, 64

    def unfused_kernels(self):
        from repro.kernels import (
            GlobalScaleKernel,
            LocalSoftmaxKernel,
        )

        rows = self.BH * self.L
        n_sv = self.L // self.T
        return [
            attention_score_matmul(self.BH, self.L, self.D),
            LocalSoftmaxKernel(num_subvectors=rows * n_sv, t=self.T),
            InterReductionKernel(rows=rows, mean_subvectors=n_sv),
            GlobalScaleKernel(num_subvectors=rows * n_sv, t=self.T),
            attention_value_matmul(self.BH, self.L, self.D),
        ]

    def fused_kernels(self):
        rows = self.BH * self.L
        return [
            FusedMatMulLSKernel(batch=self.BH, m=self.L, n=self.L,
                                k=self.D, t=self.T),
            InterReductionKernel(rows=rows, mean_subvectors=self.L // self.T),
            FusedGSMatMulKernel(batch=self.BH, m=self.L, n=self.D,
                                k=self.L, t=self.T),
        ]

    def total_traffic(self, kernels):
        return sum(k.launch_spec(A100).dram_bytes for k in kernels)

    def test_attention_matrix_sweeps_halved(self):
        matrix_bytes = self.BH * self.L * self.L * 2
        unfused = self.total_traffic(self.unfused_kernels())
        fused = self.total_traffic(self.fused_kernels())
        # Decomposed-unfused sweeps the matrix 6x (QK write, LS r/w,
        # GS r/w, AV read); fused does write-once + read-once plus the
        # small Q/K/V and m'/d'/r' traffic.
        assert unfused > 5.5 * matrix_bytes
        assert fused == pytest.approx(2 * matrix_bytes, rel=0.15)
        assert fused > 2 * matrix_bytes

    def test_intermediate_overhead_below_ten_percent(self):
        """m', d', r' traffic added to MatMul is < 9.3% of the original
        softmax traffic (Section 5.1)."""
        softmax_traffic = 2 * self.BH * self.L * self.L * 2
        fused_mm = FusedMatMulLSKernel(batch=self.BH, m=self.L, n=self.L,
                                       k=self.D, t=self.T)
        plain_mm = attention_score_matmul(self.BH, self.L, self.D,
                                          tile_n=self.T)
        extra = (fused_mm.launch_spec(A100).dram_bytes
                 - plain_mm.launch_spec(A100).dram_bytes)
        assert extra / softmax_traffic < 0.093

    def test_fused_adds_cuda_flops_to_matmul(self):
        fused = FusedMatMulLSKernel(batch=self.BH, m=self.L, n=self.L,
                                    k=self.D, t=self.T)
        plain = attention_score_matmul(self.BH, self.L, self.D)
        assert fused.launch_spec(A100).cuda_flops > 0
        assert plain.launch_spec(A100).cuda_flops == 0
        assert fused.launch_spec(A100).tensor_flops == pytest.approx(
            plain.launch_spec(A100).tensor_flops
        )
