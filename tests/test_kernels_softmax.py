"""Tests for the monolithic row softmax kernel."""

import numpy as np
import pytest
from scipy.special import softmax as scipy_softmax

from repro.common import DType, ShapeError
from repro.gpu import A100
from repro.kernels import RowSoftmaxKernel
from repro.kernels.softmax import safe_softmax


def rng():
    return np.random.default_rng(11)


class TestSafeSoftmaxMath:
    def test_matches_scipy(self):
        x = rng().standard_normal((4, 64)).astype(np.float32)
        np.testing.assert_allclose(
            safe_softmax(x), scipy_softmax(x, axis=-1), rtol=1e-6
        )

    def test_rows_sum_to_one(self):
        x = rng().standard_normal((8, 128)) * 10
        sums = safe_softmax(x).sum(axis=-1)
        np.testing.assert_allclose(sums, 1.0, rtol=1e-5)

    def test_large_magnitudes_do_not_overflow(self):
        """The 'safe' part: huge logits must not produce inf/nan (Eq. 1)."""
        x = np.array([[1e4, 1e4 + 1.0, 1e4 - 1.0]], dtype=np.float32)
        y = safe_softmax(x)
        assert np.all(np.isfinite(y))
        np.testing.assert_allclose(y.sum(), 1.0, rtol=1e-6)

    def test_partially_masked_row(self):
        x = np.array([[0.0, -np.inf, 0.0, -np.inf]], dtype=np.float32)
        np.testing.assert_allclose(safe_softmax(x), [[0.5, 0.0, 0.5, 0.0]])

    def test_fully_masked_row_yields_zeros(self):
        x = np.full((1, 8), -np.inf, dtype=np.float32)
        np.testing.assert_array_equal(safe_softmax(x), np.zeros((1, 8)))

    def test_shift_invariance(self):
        x = rng().standard_normal((3, 32)).astype(np.float32)
        np.testing.assert_allclose(
            safe_softmax(x), safe_softmax(x + 100.0), rtol=1e-4
        )


class TestKernelNumerics:
    def test_kernel_applies_fp16_storage(self):
        x = rng().standard_normal((2, 3, 64)).astype(np.float32)
        kernel = RowSoftmaxKernel(rows=6, length=64, dtype=DType.FP16)
        out = kernel.compute(x)
        expected = np.float16(
            safe_softmax(np.float16(x).astype(np.float32))
        ).astype(np.float32)
        np.testing.assert_array_equal(out, expected)

    def test_rejects_wrong_row_length(self):
        kernel = RowSoftmaxKernel(rows=4, length=64)
        with pytest.raises(ShapeError):
            kernel.compute(np.zeros((4, 32)))


class TestKernelCost:
    def test_operational_intensity_is_2_5(self):
        """Section 3.1: 5 ops/element over 2 bytes read => 2.5 Op/B of input."""
        kernel = RowSoftmaxKernel(rows=1024, length=4096, dtype=DType.FP16)
        launch = kernel.launch_spec(A100)
        assert launch.cuda_flops / launch.dram_read_bytes == pytest.approx(2.5)

    def test_dense_traffic_is_two_sweeps(self):
        kernel = RowSoftmaxKernel(rows=65536, length=4096, dtype=DType.FP16)
        launch = kernel.launch_spec(A100)
        sweep = 65536 * 4096 * 2
        assert launch.dram_read_bytes == sweep
        assert launch.dram_write_bytes == sweep

    def test_sparse_rows_issue_fraction_collapses(self):
        """Conservatively provisioned sparse rows idle most warps (§5.1)."""
        dense = RowSoftmaxKernel(rows=1000, length=4096)
        sparse = RowSoftmaxKernel(
            rows=1000, length=4096, mean_nnz=512, max_nnz=4096,
            worst_case_length=4096,
        )
        dense_launch = dense.launch_spec(A100)
        sparse_launch = sparse.launch_spec(A100)
        assert sparse_launch.issue_fraction == pytest.approx(
            dense_launch.issue_fraction / 8
        )

    def test_sparse_softmax_much_lower_bandwidth(self):
        from repro.gpu.costmodel import time_kernel

        dense = RowSoftmaxKernel(rows=65536, length=4096)
        sparse = RowSoftmaxKernel(
            rows=65536, length=4096, mean_nnz=512, max_nnz=4096,
        )
        util_dense = time_kernel(A100, dense.launch_spec(A100)).bandwidth_utilization
        util_sparse = time_kernel(A100, sparse.launch_spec(A100)).bandwidth_utilization
        assert util_sparse < 0.25 * util_dense

    def test_mean_nnz_cannot_exceed_allocation(self):
        with pytest.raises(ShapeError):
            RowSoftmaxKernel(rows=10, length=64, mean_nnz=128,
                             worst_case_length=64)

    def test_memory_bound(self):
        from repro.gpu.costmodel import time_kernel

        kernel = RowSoftmaxKernel(rows=65536, length=4096)
        timing = time_kernel(A100, kernel.launch_spec(A100))
        assert timing.bound == "memory"
