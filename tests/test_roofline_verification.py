"""Tests for the roofline analysis and the reproduction verifier."""

import pytest

from repro.gpu import A100, get_gpu
from repro.gpu.roofline import (
    analyze,
    machine_balance,
    render_roofline,
    roofline_at,
    summary_table,
)
from repro.models import BERT_LARGE, InferenceSession


@pytest.fixture(scope="module")
def bert_profile():
    return InferenceSession(BERT_LARGE, seq_len=2048).simulate().profile


class TestRoofline:
    def test_machine_balance_above_25(self):
        """Section 3.1: 'the maximum FLOPS compared to the maximum
        off-chip memory bandwidth exceeds 25 FLOP/B' on modern GPUs."""
        for name in ("a100", "rtx3090", "t4"):
            assert machine_balance(get_gpu(name)) > 25

    def test_roofline_shape(self):
        balance = machine_balance(A100)
        assert roofline_at(A100, balance / 10) == pytest.approx(
            A100.mem_bandwidth * balance / 10
        )
        assert roofline_at(A100, balance * 10) == A100.fp16_tensor_flops

    def test_softmax_point_memory_bound(self, bert_profile):
        points = {p.name: p for p in analyze(bert_profile, A100)}
        softmax = points["softmax"]
        # The paper's 2.5 Op/B counts 5 ops per 2 input bytes; against
        # total (read + write) traffic that is 1.25 FLOP/B — either
        # way, orders of magnitude below machine balance.
        assert softmax.intensity == pytest.approx(1.25, rel=0.2)
        assert softmax.intensity < machine_balance(A100) / 20

    def test_fc_point_compute_side(self, bert_profile):
        points = {p.name: p for p in analyze(bert_profile, A100)}
        # FC GEMMs sit far to the right of softmax.
        assert points["fc"].intensity > 20 * points["softmax"].intensity

    def test_efficiency_bounded(self, bert_profile):
        for point in analyze(bert_profile, A100):
            assert 0 < point.efficiency <= 1.0

    def test_per_kernel_mode(self, bert_profile):
        by_cat = analyze(bert_profile, A100, by_category=True)
        by_kernel = analyze(bert_profile, A100, by_category=False)
        assert len(by_kernel) >= len(by_cat)

    def test_render_contains_points_and_balance(self, bert_profile):
        points = analyze(bert_profile, A100)
        text = render_roofline(points, A100)
        assert "machine balance" in text
        assert "A=" in text

    def test_render_empty(self):
        assert render_roofline([], A100) == "(no points)"

    def test_summary_table_regimes(self, bert_profile):
        text = summary_table(analyze(bert_profile, A100), A100)
        assert "memory" in text and "compute" in text


class TestVerification:
    def test_quick_verification_passes(self):
        from repro.analysis.verification import verify_reproduction

        report = verify_reproduction(quick=True)
        assert len(report.results) == 4
        assert report.all_passed, report.render()

    def test_full_verification_mostly_passes(self):
        """The full suite includes the documented deviations (dense SD
        point); everything else must pass."""
        from repro.analysis.verification import verify_reproduction

        report = verify_reproduction()
        assert len(report.results) == 13
        failing = [r.target.name for r in report.results if not r.passed]
        # Only the documented dense-SD deviation may fail.
        assert set(failing) <= {"SD-only speedup, bert-large"}, failing

    def test_report_rendering(self):
        from repro.analysis.verification import verify_reproduction

        report = verify_reproduction(quick=True)
        text = report.render()
        assert "Fig. 8(a)" in text
        assert "PASS" in text
        assert f"{report.pass_count}/4" in text

    def test_deviation_computation(self):
        from repro.analysis.verification import CheckResult, PaperTarget

        target = PaperTarget(name="x", source="s", paper_value=2.0,
                             rel_tol=0.1, measure=lambda: 2.1)
        result = CheckResult(target=target, measured=2.1)
        assert result.deviation == pytest.approx(0.05)
        assert result.passed
        assert not CheckResult(target=target, measured=2.5).passed
