"""The seed audit: the test suites contain no unseeded randomness.

``tools/lint_seeded_rng.py`` is wired into ``make lint``; this test
keeps the same guarantee inside the tier-1 suite (CI configurations
that skip the lint job still enforce it) and pins the lint's own
behaviour — what it catches, what it allows, and the waiver escape
hatch.
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "tools"))

from lint_seeded_rng import main as lint_main, scan_file  # noqa: E402

REPO = pathlib.Path(__file__).resolve().parents[1]


class TestRepositoryIsClean:
    def test_tests_and_benchmarks_have_no_unseeded_rng(self, capsys):
        assert lint_main([str(REPO / "tests"),
                          str(REPO / "benchmarks")]) == 0
        assert "seed lint: ok" in capsys.readouterr().out


class TestLintBehaviour:
    def write(self, tmp_path, source):
        path = tmp_path / "case.py"
        path.write_text(source)
        return path

    def test_catches_unseeded_default_rng(self, tmp_path):
        path = self.write(tmp_path,
                          "rng = np.random.default_rng()\n")  # seeded-ok: lint fixture
        problems = scan_file(path)
        assert len(problems) == 1
        assert "unseeded default_rng" in problems[0]

    def test_allows_seeded_default_rng(self, tmp_path):
        path = self.write(
            tmp_path,
            "rng = np.random.default_rng(0)\n"
            "rng2 = np.random.default_rng([seed, 1, case])\n",
        )
        assert scan_file(path) == []

    def test_catches_legacy_global_state_api(self, tmp_path):
        path = self.write(
            tmp_path,
            "x = np.random.rand(4)\n"  # seeded-ok: lint fixture
            "np.random.seed(0)\n"  # seeded-ok: lint fixture
            "y = np.random.standard_normal(8)\n",  # seeded-ok: lint fixture
        )
        problems = scan_file(path)
        assert len(problems) == 3
        assert all("legacy np.random" in p for p in problems)

    def test_catches_stdlib_random(self, tmp_path):
        path = self.write(tmp_path,
                          "value = random.random()\n")  # seeded-ok: lint fixture
        problems = scan_file(path)
        assert len(problems) == 1
        assert "stdlib random" in problems[0]

    def test_rng_method_calls_are_fine(self, tmp_path):
        """``rng.random()`` on a seeded Generator must not be flagged
        even though it ends in ``random(``."""
        path = self.write(
            tmp_path,
            "rng = np.random.default_rng(7)\n"
            "x = rng.random(3)\n"
            "y = rng.shuffle(x)\n",
        )
        assert scan_file(path) == []

    def test_waiver_comment(self, tmp_path):
        path = self.write(
            tmp_path,
            "rng = np.random.default_rng()  "  # seeded-ok: lint fixture
            "# seeded-ok: exercises entropy seeding\n",
        )
        assert scan_file(path) == []

    def test_commented_out_code_ignored(self, tmp_path):
        path = self.write(tmp_path, "# x = np.random.rand(4)\n")
        assert scan_file(path) == []

    def test_cli_exit_code_on_violation(self, tmp_path, capsys):
        path = self.write(tmp_path,
                          "x = np.random.rand(4)\n")  # seeded-ok: lint fixture
        assert lint_main([str(path)]) == 1
        assert "seeded-ok" in capsys.readouterr().out
