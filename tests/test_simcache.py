"""Simulation-cache correctness: hits, invalidation, the escape hatch."""

import numpy as np
import pytest

from repro.common.errors import DeviceError
from repro.gpu import simcache
from repro.gpu.costmodel import time_kernel
from repro.gpu.specs import get_gpu
from repro.kernels.matmul import MatMulKernel
from repro.models.runtime import InferenceSession


@pytest.fixture(autouse=True)
def _fresh_caches(monkeypatch):
    """Each test starts with empty, enabled caches."""
    monkeypatch.delenv(simcache.ENV_VAR, raising=False)
    simcache.invalidate()
    yield
    simcache.invalidate()


def _launch():
    return MatMulKernel(batch=4, m=256, n=256, k=64).launch_spec(
        get_gpu("A100")
    )


class TestKernelCache:
    def test_hit_returns_equal_timing(self):
        spec = get_gpu("A100")
        launch = _launch()
        first = time_kernel(spec, launch)
        second = time_kernel(spec, launch)
        assert first == second
        stats = simcache.stats()["kernel"]
        assert stats.hits >= 1 and stats.misses >= 1

    def test_distinct_keys_miss(self):
        launch = _launch()
        time_kernel(get_gpu("A100"), launch)
        before = simcache.stats()["kernel"].misses
        time_kernel(get_gpu("T4"), launch)
        assert simcache.stats()["kernel"].misses == before + 1

    def test_disabled_by_env(self, monkeypatch):
        monkeypatch.setenv(simcache.ENV_VAR, "0")
        spec, launch = get_gpu("A100"), _launch()
        time_kernel(spec, launch)
        time_kernel(spec, launch)
        stats = simcache.stats()["kernel"]
        assert stats.hits == 0
        assert len(simcache.kernel_cache) == 0

    def test_disabled_matches_enabled(self, monkeypatch):
        spec, launch = get_gpu("A100"), _launch()
        cached = time_kernel(spec, launch)
        monkeypatch.setenv(simcache.ENV_VAR, "0")
        assert time_kernel(spec, launch) == cached


class TestSimulateCache:
    def test_hit_returns_same_object(self):
        session = InferenceSession("bert-large", seq_len=512)
        first = session.simulate()
        second = InferenceSession("bert-large", seq_len=512).simulate()
        assert second is first

    def test_cached_result_is_frozen(self):
        result = InferenceSession("bert-large", seq_len=512).simulate()
        assert result.profile.frozen
        with pytest.raises(DeviceError):
            result.profile.extend(result.profile)
        for _, _, group in result.layer_groups:
            assert group.frozen

    def test_key_sensitivity(self):
        a = InferenceSession("bert-large", seq_len=512).simulate()
        b = InferenceSession("bert-large", seq_len=1024).simulate()
        c = InferenceSession("bert-large", seq_len=512, plan="sdf").simulate()
        assert a is not b and a is not c
        assert simcache.stats()["simulate"].misses == 3

    def test_invalidate_clears(self):
        InferenceSession("bert-large", seq_len=512).simulate()
        assert len(simcache.simulate_cache) == 1
        simcache.invalidate()
        assert len(simcache.simulate_cache) == 0
        assert simcache.stats()["simulate"].lookups == 0

    def test_disabled_returns_fresh_unfrozen(self, monkeypatch):
        cached = InferenceSession("bert-large", seq_len=512).simulate()
        monkeypatch.setenv(simcache.ENV_VAR, "0")
        fresh = InferenceSession("bert-large", seq_len=512).simulate()
        assert fresh is not cached
        assert not fresh.profile.frozen
        assert fresh.total_time == cached.total_time
        assert fresh.total_dram_bytes == cached.total_dram_bytes

    def test_disabled_values_match_enabled(self, monkeypatch):
        monkeypatch.setenv(simcache.ENV_VAR, "0")
        off = InferenceSession("bigbird-large", seq_len=1024).simulate()
        monkeypatch.setenv(simcache.ENV_VAR, "1")
        on = InferenceSession("bigbird-large", seq_len=1024).simulate()
        assert on.total_time == off.total_time
        assert on.total_dram_bytes == off.total_dram_bytes
        assert np.isclose(on.offchip_energy, off.offchip_energy, rtol=0)


class TestSentinel:
    """``SimCache.get`` must distinguish absence from cached falsy
    values with its private sentinel, never with ``None`` comparison."""

    def test_cached_none_is_a_hit(self):
        cache = simcache.SimCache("falsy")
        cache.put("k", None)
        assert cache.get("k", simcache.MISSING) is None
        assert cache.stats.hits == 1 and cache.stats.misses == 0

    @pytest.mark.parametrize("value", [None, 0, 0.0, "", [], {}, False])
    def test_cached_falsy_values_round_trip(self, value):
        cache = simcache.SimCache("falsy")
        cache.put("k", value)
        got = cache.get("k", simcache.MISSING)
        assert got is not simcache.MISSING
        assert got == value
        assert cache.stats.hits == 1

    def test_absent_key_returns_default(self):
        cache = simcache.SimCache("falsy")
        assert cache.get("k") is None
        assert cache.get("k", simcache.MISSING) is simcache.MISSING
        assert cache.get("k", 42) == 42
        assert cache.stats.misses == 3 and cache.stats.hits == 0

    def test_accounting_across_env_flip(self, monkeypatch):
        """Hit/miss counters stay consistent when REPRO_SIMCACHE is
        flipped mid-run: disabled lookups are misses and never expose
        stored entries."""
        cache = simcache.SimCache("flip")
        cache.put("k", 7)
        assert cache.get("k", simcache.MISSING) == 7
        monkeypatch.setenv(simcache.ENV_VAR, "0")
        assert cache.get("k", simcache.MISSING) is simcache.MISSING
        cache.put("other", 1)  # no-op while disabled
        monkeypatch.delenv(simcache.ENV_VAR)
        assert cache.get("k", simcache.MISSING) == 7
        assert cache.get("other", simcache.MISSING) is simcache.MISSING
        assert cache.stats.hits == 2
        assert cache.stats.misses == 2
        assert cache.stats.lookups == 4


class TestStats:
    def test_hit_rate(self):
        spec, launch = get_gpu("A100"), _launch()
        time_kernel(spec, launch)
        time_kernel(spec, launch)
        time_kernel(spec, launch)
        stats = simcache.stats()["kernel"]
        assert stats.lookups == stats.hits + stats.misses
        assert stats.hit_rate == pytest.approx(2 / 3)

    def test_empty_cache_rate_zero(self):
        assert simcache.stats()["simulate"].hit_rate == 0.0
