"""Bridge tests for the differential verification harness.

Runs the seeded fuzz driver with a fixed budget per family (the same
entry point CI's ``verify-fuzz`` job uses), checks the registry's
shape, and — the harness's own regression test — injects an
off-by-one into the decomposed softmax and asserts the fuzzer catches
it, shrinks it to a minimal repro, and writes a replayable artifact.
"""

import json

import numpy as np
import pytest

from repro.verify.cases import FAMILIES, build_case, draw_params
from repro.verify.contracts import EXACT, FP32_MATH, ulp_distance
from repro.verify.fuzz import fuzz_family, replay_artifact
from repro.verify.oracles import build_registry, default_registry

#: The per-family budget: small enough for tier-1, large enough that
#: every regime (normal/large/tiny/denormal/masked/rowmask) is drawn.
FUZZ_CASES = 200


class TestRegistry:
    def test_covers_every_family(self):
        registry = default_registry()
        assert set(FAMILIES) <= set(registry.families())

    def test_every_hook_contributed(self):
        registry = default_registry()
        assert len(registry) >= 20
        prefixes = {name.split(".")[0] for name in registry.names()}
        assert prefixes == {"softmax", "attention", "block_sparse",
                            "serving", "interconnect", "controlplane",
                            "moe"}

    def test_contracts_resolve_for_both_dtypes(self):
        from repro.common.dtypes import DType

        for oracle in default_registry():
            for dtype in (DType.FP32, DType.FP16):
                contract = oracle.contract_for(dtype)
                assert contract.atol >= 0 and contract.rtol >= 0

    def test_duplicate_name_rejected(self):
        registry = build_registry()
        oracle = next(iter(registry))
        with pytest.raises(ValueError):
            registry.register(oracle)


class TestContracts:
    def test_ulp_distance_adjacent_floats(self):
        one = np.float32(1.0)
        nxt = np.nextafter(one, np.float32(2.0), dtype=np.float32)
        assert ulp_distance(np.array([one]), np.array([nxt]))[0] == 1

    def test_ulp_distance_across_zero(self):
        tiny = np.nextafter(np.float32(0.0), np.float32(1.0),
                            dtype=np.float32)
        assert ulp_distance(np.array([-tiny]), np.array([tiny]))[0] == 2

    def test_exact_contract_is_bit_identical(self):
        from repro.common.dtypes import DType
        from repro.verify.contracts import compare_arrays

        a = np.array([1.0, 2.0], dtype=np.float32)
        assert compare_arrays(a, a.copy(), EXACT, DType.FP32).ok
        b = a.copy()
        b[0] = np.nextafter(b[0], np.float32(2.0), dtype=np.float32)
        assert not compare_arrays(a, b, EXACT, DType.FP32).ok


class TestCaseGeneration:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_cases_are_pure_functions_of_params(self, family):
        rng = np.random.default_rng(7)
        params = draw_params(family, rng)
        first = build_case(family, params)
        second = build_case(family, params)
        assert first.arrays.keys() == second.arrays.keys()
        for key in first.arrays:
            np.testing.assert_array_equal(first.arrays[key],
                                          second.arrays[key])

    def test_draws_are_seed_deterministic(self):
        a = [draw_params("softmax", np.random.default_rng(3))
             for _ in range(5)]
        b = [draw_params("softmax", np.random.default_rng(3))
             for _ in range(5)]
        assert a == b


class TestFuzzBudget:
    """The acceptance gate: every family passes its seeded budget."""

    @pytest.mark.parametrize("family", FAMILIES)
    def test_family_fuzz_passes(self, family):
        report = fuzz_family(family, cases=FUZZ_CASES, seed=0)
        assert report.runs >= FUZZ_CASES
        assert report.ok, report.render()


class TestInjectedBug:
    """Inject an off-by-one rotation into inter_reduction and demand
    the harness catches it, shrinks it, and writes an artifact."""

    def _inject(self, monkeypatch):
        import repro.core.decomposition as decomposition

        real = decomposition.inter_reduction

        def off_by_one(m_prime, d_prime):
            # r' ends up paired with the wrong sub-vector — invisible
            # at n_sv == 1, so the shrinker must keep n_sv >= 2.
            return np.roll(real(m_prime, d_prime), 1, axis=-1)

        monkeypatch.setattr(decomposition, "inter_reduction", off_by_one)

    def test_caught_shrunk_and_artifacted(self, monkeypatch, tmp_path):
        self._inject(monkeypatch)
        report = fuzz_family("softmax", cases=60, seed=0,
                             registry=build_registry(),
                             artifact_dir=tmp_path, max_failures=3)
        failures = [f for f in report.failures
                    if f.oracle == "softmax.decomposed_math"]
        assert failures, "injected off-by-one was not caught"

        failure = failures[0]
        # Shrunk to the minimal configuration that can express the bug.
        assert failure.shrunk_params["n_sv"] >= 2
        assert failure.shrunk_params["batch"] == 1
        assert failure.shrunk_params["rows"] == 1
        assert failure.shrunk_params["t"] == 1

        document = json.loads(
            (tmp_path / failure.artifact_path.split("/")[-1]).read_text())
        assert document["schema"] == "repro.verify.failure/v1"
        assert document["params"] == failure.shrunk_params
        assert "replay" in document["repro"]
        assert document["differential"] is not None

        # While the bug is live, replay reproduces the failure...
        result = replay_artifact(failure.artifact_path,
                                 registry=build_registry())
        assert result.failed

    def test_replay_passes_once_fixed(self, monkeypatch, tmp_path):
        self._inject(monkeypatch)
        report = fuzz_family("softmax", cases=60, seed=0,
                             registry=build_registry(),
                             artifact_dir=tmp_path, max_failures=1)
        assert not report.ok
        artifact = report.failures[0].artifact_path
        monkeypatch.undo()  # "fix" the bug
        result = replay_artifact(artifact, registry=build_registry())
        assert not result.failed

    def test_invariants_alone_catch_row_sum_break(self, monkeypatch):
        """A bug that breaks normalization trips the metamorphic layer
        even where the differential reference is also recomposed."""
        import repro.core.decomposition as decomposition

        real = decomposition.global_scaling

        def unnormalized(x_prime, r_prime, t):
            return real(x_prime, r_prime, t) * np.float32(1.5)

        monkeypatch.setattr(decomposition, "global_scaling", unnormalized)

        x = np.random.default_rng(0).standard_normal(
            (1, 2, 8)).astype(np.float32)
        from repro.verify.invariants import check_softmax_function

        violations = check_softmax_function(
            lambda a: decomposition.decomposed_softmax(a, 2), x, FP32_MATH)
        assert any(v.invariant == "row_sum_one" for v in violations)


class TestCLIBridge:
    def test_verify_fuzz_exit_zero(self, capsys):
        from repro.cli import main

        assert main(["verify", "fuzz", "--family", "softmax",
                     "--cases", "20"]) == 0
        out = capsys.readouterr().out
        assert "[PASS] family=softmax" in out

    def test_verify_replay_missing_path_errors(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["verify", "replay"])

    def _handcrafted_artifact(self, tmp_path):
        """A minimal artifact for a healthy oracle: replay only needs
        family, oracle, and params — the diagnostic fields a fuzz run
        would add are context, not inputs."""
        params = draw_params("softmax", np.random.default_rng(42))
        path = tmp_path / "handcrafted.json"
        path.write_text(json.dumps({
            "schema": "repro.verify.failure/v1",
            "family": "softmax",
            "oracle": "softmax.decomposed_math",
            "params": params,
        }))
        return path, params

    def test_verify_replay_pass_exits_zero(self, tmp_path, capsys):
        from repro.cli import main

        path, _ = self._handcrafted_artifact(tmp_path)
        assert main(["verify", "replay", str(path)]) == 0
        assert "[PASS] softmax.decomposed_math" in capsys.readouterr().out

    def test_verify_replay_roundtrips_params(self, tmp_path, capsys):
        """The JSON document must echo the artifact's params exactly,
        so a replayed case can be re-artifacted without drift."""
        from repro.cli import main

        path, params = self._handcrafted_artifact(tmp_path)
        assert main(["verify", "replay", str(path), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["kind"] == "verify-replay"
        assert doc["failed"] is False
        assert doc["oracle"] == "softmax.decomposed_math"
        assert doc["params"] == params

    def test_verify_replay_failure_exits_one(self, tmp_path, capsys,
                                             monkeypatch):
        """While the injected bug is live the CLI must propagate the
        failure as exit code 1."""
        from repro.cli import main

        import repro.core.decomposition as decomposition

        real = decomposition.inter_reduction

        def off_by_one(m_prime, d_prime):
            return np.roll(real(m_prime, d_prime), 1, axis=-1)

        monkeypatch.setattr(decomposition, "inter_reduction", off_by_one)
        report = fuzz_family("softmax", cases=60, seed=0,
                             registry=build_registry(),
                             artifact_dir=tmp_path, max_failures=1)
        assert not report.ok
        artifact = report.failures[0].artifact_path
        assert main(["verify", "replay", artifact]) == 1
        assert "[FAIL]" in capsys.readouterr().out
        monkeypatch.undo()  # fix the bug: the same artifact now passes
        assert main(["verify", "replay", artifact]) == 0
