"""Tests for the cluster-scale serving simulator.

Covers the collective-cost API (ring/tree all-reduce identities), the
sharded step-cost model (communication charged, compute sharded,
per-GPU memory relieved), the routing policies (determinism, request
conservation, prefix colocation), and the report schema contract.
"""

import json
import math

import pytest

from repro.cluster import (
    ClusterSimulator,
    LeastOutstandingPolicy,
    POLICIES,
    PrefixAffinityPolicy,
    Replica,
    RoundRobinPolicy,
    ShardedStepCostModel,
    make_policy,
    simulate_cluster,
)
from repro.common.errors import ConfigError, ServingError
from repro.gpu.interconnect import (
    NVLINK3,
    PCIE4,
    allgather_time,
    allreduce_time,
    point_to_point_time,
    reduce_scatter_time,
)
from repro.gpu.specs import get_gpu
from repro.models.config import AttentionKind, AttentionSpec, ModelConfig
from repro.models.footprint import weight_bytes
from repro.serving.costmodel import StepCostModel
from repro.serving.memory import KVBlockManager
from repro.serving.requests import Request, ServingWorkload

TINY = ModelConfig(
    "tiny-cluster", num_layers=2, d_model=128, num_heads=4, d_ff=256,
    attention=(AttentionSpec(AttentionKind.DENSE_CAUSAL),),
)


def tiny_requests(n=6, prompt=128, output=4, gap=0.05, groups=None):
    return [
        Request(request_id=i, arrival_time=i * gap, prompt_len=prompt,
                output_len=output,
                prefix_group=None if groups is None else groups[i])
        for i in range(n)
    ]


class TestCollectives:
    def test_ring_is_reduce_scatter_plus_allgather(self):
        for spec in (NVLINK3, PCIE4):
            for n in (2, 3, 4, 8):
                nbytes = 1 << 20
                assert allreduce_time(spec, nbytes, n) == (
                    reduce_scatter_time(spec, nbytes, n)
                    + allgather_time(spec, nbytes, n)
                )

    def test_single_gpu_is_free(self):
        for fn in (reduce_scatter_time, allgather_time):
            assert fn(NVLINK3, 1 << 20, 1) == 0.0
        for algorithm in ("ring", "tree"):
            assert allreduce_time(NVLINK3, 1 << 20, 1,
                                  algorithm=algorithm) == 0.0

    def test_tree_formula(self):
        nbytes, n = 1 << 22, 8
        expected = (2.0 * nbytes / NVLINK3.link_bandwidth
                    + 2 * math.ceil(math.log2(n)) * NVLINK3.hop_latency)
        assert allreduce_time(NVLINK3, nbytes, n,
                              algorithm="tree") == pytest.approx(expected)

    def test_point_to_point(self):
        nbytes = 1 << 20
        assert point_to_point_time(NVLINK3, nbytes) == pytest.approx(
            nbytes / NVLINK3.link_bandwidth + NVLINK3.hop_latency)

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ConfigError):
            allreduce_time(NVLINK3, 1024, 4, algorithm="butterfly")


class TestShardedStepCostModel:
    def test_tp1_pp1_matches_single_gpu_model(self):
        base = StepCostModel(TINY, "t4", plan="sdf")
        sharded = ShardedStepCostModel(TINY, "t4", plan="sdf")
        kwargs = dict(prefill=[(128, 128)], decode_kv=[64, 192])
        total, comm = sharded.step_cost(**kwargs)
        assert comm == 0.0
        assert total == base.step_time(**kwargs)

    def test_tp2_charges_communication(self):
        sharded = ShardedStepCostModel(TINY, "t4", plan="sdf", tp=2)
        total, comm = sharded.step_cost(prefill=[(128, 128)])
        assert comm > 0
        hidden = 128 * TINY.d_model * sharded.dtype.nbytes
        expected = TINY.num_layers * 2 * allreduce_time(NVLINK3, hidden, 2)
        assert comm == pytest.approx(expected)

    def test_pp_boundary_charges_point_to_point(self):
        tp_only = ShardedStepCostModel(TINY, "t4", tp=2, pp=1)
        tp_pp = ShardedStepCostModel(TINY, "t4", tp=2, pp=2)
        hidden = 64 * TINY.d_model * tp_pp.dtype.nbytes
        delta = (tp_pp.comm_time(64) - tp_only.comm_time(64))
        assert delta == pytest.approx(point_to_point_time(NVLINK3, hidden))

    def test_tp2_prefill_compute_is_cheaper(self):
        # A prefill-heavy step on half the heads/FF shard beats the
        # single-GPU step even after paying the all-reduces.
        tp1 = ShardedStepCostModel(TINY, "t4", plan="sdf")
        tp2 = ShardedStepCostModel(TINY, "t4", plan="sdf", tp=2)
        kwargs = dict(prefill=[(2048, 2048)])
        assert tp2.step_time(**kwargs) < tp1.step_time(**kwargs)

    def test_empty_step_is_free(self):
        sharded = ShardedStepCostModel(TINY, "t4", tp=2, pp=2)
        assert sharded.step_cost() == (0.0, 0.0)

    def test_bad_sharding_rejected(self):
        with pytest.raises(ConfigError):
            ShardedStepCostModel(TINY, "t4", tp=3)


class TestGroupMemory:
    def test_kv_capacity_scales_with_group_size(self):
        gpu = get_gpu("t4")
        one = KVBlockManager.for_model(TINY, gpu)
        two = KVBlockManager.for_model(TINY, gpu, n_gpus=2)
        assert two.total_blocks > one.total_blocks

    def test_per_gpu_weights_shard(self):
        gpu = get_gpu("t4")
        tp1 = Replica(0, TINY, gpu)
        tp2 = Replica(0, TINY, gpu, tp=2)
        assert tp2.n_gpus == 2
        assert tp2.weight_bytes_per_gpu == pytest.approx(
            tp1.weight_bytes_per_gpu / 2)
        assert tp1.weight_bytes_per_gpu == pytest.approx(
            weight_bytes(TINY, tp1.cost.dtype))


class TestPolicies:
    def test_round_robin_rotates(self):
        policy = RoundRobinPolicy()
        replicas = [object(), object(), object()]
        chosen = [policy.choose(None, replicas) for _ in range(6)]
        assert chosen == [0, 1, 2, 0, 1, 2]

    def test_least_outstanding_picks_min(self):
        class Fake:
            def __init__(self, load):
                self.outstanding_tokens = load

        policy = LeastOutstandingPolicy()
        assert policy.choose(None, [Fake(5), Fake(2), Fake(9)]) == 1
        # Ties break on the lowest replica id.
        assert policy.choose(None, [Fake(2), Fake(2)]) == 0

    def test_prefix_affinity_colocates(self):
        class Fake:
            outstanding_tokens = 0

        policy = PrefixAffinityPolicy()
        replicas = [Fake(), Fake(), Fake()]
        first = policy.choose(
            Request(request_id=0, arrival_time=0.0, prompt_len=64,
                    output_len=1, prefix_group=7), replicas)
        for i in range(1, 4):
            again = policy.choose(
                Request(request_id=i, arrival_time=0.0, prompt_len=64,
                        output_len=1, prefix_group=7), replicas)
            assert again == first

    def test_registry_and_unknown_policy(self):
        assert set(POLICIES) == {"round-robin", "least-outstanding",
                                 "prefix-affinity"}
        for name in POLICIES:
            assert make_policy(name).name == name
        with pytest.raises(ServingError):
            make_policy("random")


class TestClusterSimulator:
    def test_requests_conserved_across_replicas(self):
        for policy in POLICIES:
            requests = tiny_requests(n=8)
            report = ClusterSimulator(
                TINY, "t4", plan="sdf", requests=requests,
                replicas=3, policy=policy,
            ).run()
            assert report.num_requests == len(requests)
            assert report.finished + report.rejected == report.num_requests
            per_replica = sum(r.report.num_requests
                              for r in report.per_replica)
            assert per_replica == len(requests)

    def test_prefix_affinity_routes_groups_together(self):
        groups = [0, 1, 0, 1, 0, 1, 0, 1]
        # Simultaneous arrivals: the router sees group 0 claim replica
        # 0 (both idle), then group 1's backlog-aware fallback picks
        # replica 1; later arrivals follow their group's home.
        requests = tiny_requests(n=8, gap=0.0, groups=groups)
        report = ClusterSimulator(
            TINY, "t4", requests=requests, replicas=2,
            policy="prefix-affinity",
        ).run()
        # Two groups, two replicas: each group pins to one home, so
        # every replica sees only whole groups (here: exactly one).
        counts = sorted(r.report.num_requests for r in report.per_replica)
        assert counts == [4, 4]

    def test_fixed_seed_is_deterministic(self):
        docs = []
        for _ in range(2):
            report = simulate_cluster(
                TINY, "t4", rate=4, duration=5, seed=3, replicas=2, tp=2,
                policy="least-outstanding", prefix_groups=4,
            )
            docs.append(json.dumps(report.to_dict(), sort_keys=True))
        assert docs[0] == docs[1]

    def test_aggregate_matches_union_of_replicas(self):
        report = simulate_cluster(
            TINY, "t4", rate=4, duration=5, seed=0, replicas=2,
            plans=("sdf",),
        ).plans["sdf"]
        assert report.finished == sum(r.report.finished
                                      for r in report.per_replica)
        assert report.generated_tokens == sum(r.report.generated_tokens
                                              for r in report.per_replica)
        assert report.makespan == max(r.report.makespan
                                      for r in report.per_replica)

    def test_tp_communication_visible_in_report(self):
        report = simulate_cluster(
            TINY, "t4", rate=4, duration=5, seed=0, replicas=2, tp=2,
            plans=("sdf",),
        ).plans["sdf"]
        assert report.comm_time_s > 0
        assert 0 < report.comm_fraction < 1
        for replica in report.per_replica:
            assert replica.n_gpus == 2
            assert replica.weight_bytes_per_gpu == pytest.approx(
                weight_bytes(TINY, ShardedStepCostModel(
                    TINY, "t4").dtype) / 2)

    def test_single_replica_matches_serving_simulator_shape(self):
        from repro.serving import simulate_serving

        requests = tiny_requests(n=4)
        cluster = ClusterSimulator(
            TINY, "t4", plan="sdf", requests=requests, replicas=1,
        ).run()
        single = simulate_serving(
            TINY, "t4", rate=1.0, duration=1.0, plans=("sdf",),
            requests=requests,
        ).plans["sdf"]
        # One unsharded replica is exactly the single-node simulator.
        replica = cluster.per_replica[0].report
        assert replica.finished == single.finished
        assert replica.steps == single.steps
        assert replica.makespan == pytest.approx(single.makespan)
        assert replica.ttft.p99 == pytest.approx(single.ttft.p99)

    def test_workload_prefix_groups(self):
        stream = ServingWorkload(rate=8, duration=5, seed=0,
                                 prefix_groups=3).requests()
        assert {r.prefix_group for r in stream} <= {0, 1, 2}
        plain = ServingWorkload(rate=8, duration=5, seed=0).requests()
        assert all(r.prefix_group is None for r in plain)
        # Grouping must not perturb arrivals or lengths.
        assert [(r.arrival_time, r.prompt_len, r.output_len)
                for r in stream] == [
            (r.arrival_time, r.prompt_len, r.output_len) for r in plain]

    def test_report_schema(self):
        report = simulate_cluster(TINY, "t4", rate=4, duration=3, seed=0,
                                  replicas=2, plans=("sdf",))
        doc = json.loads(json.dumps(report.to_dict()))
        assert doc["schema"] == "repro.result/v1"
        assert doc["kind"] == "cluster-report"
        plan = doc["plans"]["sdf"]
        assert plan["kind"] == "cluster-plan"
        for replica in plan["per_replica"]:
            assert replica["kind"] == "cluster-replica"
