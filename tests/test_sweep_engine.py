"""Sweep engine: serial/parallel equivalence and deterministic merge."""

import pytest

from repro.cli import main as cli_main
from repro.common.errors import ConfigError
from repro.gpu import simcache
from repro.gpu.specs import get_gpu
from repro.models.config import get_model
from repro.workloads import (
    DatasetBenchmark,
    SweepPoint,
    SweepRunner,
    SyntheticTriviaQA,
    simulate_point,
)


@pytest.fixture(autouse=True)
def _fresh_caches():
    simcache.invalidate()
    yield
    simcache.invalidate()


def _points():
    return [
        SweepPoint.make("bert-large", plan=plan, seq_len=seq_len)
        for seq_len in (512, 1024)
        for plan in ("baseline", "sdf")
    ]


def test_point_is_hashable_and_picklable():
    import pickle

    point = SweepPoint.make("bigbird-large", gpu="T4", plan="sd",
                            seq_len=2048)
    assert hash(point) == hash(pickle.loads(pickle.dumps(point)))
    assert point.model == get_model("bigbird-large")
    assert point.gpu == get_gpu("T4")


def test_simulate_point_matches_session():
    point = _points()[0]
    result = simulate_point(point)
    assert result.model == point.model
    assert result.seq_len == point.seq_len
    assert result.total_time > 0


def test_serial_results_in_input_order():
    points = _points()
    results = SweepRunner(jobs=1).run(points)
    assert [r.seq_len for r in results] == [p.seq_len for p in points]
    assert [r.plan for r in results] == [p.plan for p in points]


def test_parallel_equals_serial():
    points = _points()
    serial = SweepRunner(jobs=1).run(points)
    parallel = SweepRunner(jobs=4).run(points)
    assert [r.total_time for r in serial] == [r.total_time for r in parallel]
    assert ([r.total_dram_bytes for r in serial]
            == [r.total_dram_bytes for r in parallel])
    assert [r.plan for r in serial] == [r.plan for r in parallel]


def test_jobs_must_be_positive():
    with pytest.raises(ConfigError):
        SweepRunner(jobs=0)


def test_map_latencies():
    points = _points()[:2]
    runner = SweepRunner(jobs=1)
    latencies = runner.map_latencies(points)
    assert len(latencies) == 2
    assert runner.points_run == 2
    assert all(t > 0 for t in latencies)


def test_driver_parallel_equals_serial():
    dataset = SyntheticTriviaQA(num_documents=48, seed=11)
    kwargs = dict(max_seq_len=2048, plan="sdf")
    serial = DatasetBenchmark(dataset, "longformer-large", jobs=1,
                              **kwargs).run()
    parallel = DatasetBenchmark(dataset, "longformer-large", jobs=3,
                                **kwargs).run()
    assert serial.histogram == parallel.histogram
    assert serial.bucket_latency == parallel.bucket_latency
    assert serial.mean_latency == parallel.mean_latency


def test_cli_sweep_jobs_byte_identical(capsys):
    argv = ["sweep", "--model", "bert-large", "--values", "512,1024"]
    cli_main(argv + ["--jobs", "1"])
    serial = capsys.readouterr().out
    cli_main(argv + ["--jobs", "2"])
    parallel = capsys.readouterr().out
    assert serial == parallel
