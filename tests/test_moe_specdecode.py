"""Mixture-of-experts layers and speculative decoding.

The two subsystems share one contract with the rest of the stack:
*disabled is byte-identical*.  ``n_experts=1, top_k=1`` prices as the
dense model, ``draft_model=None`` takes the historical single-token
decode path, and the oracles (``moe.router_conservation``,
``serving.spec_decode_equivalence``) pin the enabled behaviour.
"""

import numpy as np
import pytest

from repro.common.dtypes import DType
from repro.common.errors import ConfigError, ServingError
from repro.core.plansource import PlanSource
from repro.models.config import ModelConfig, get_model
from repro.models.moe import (
    MIXTRAL_MOE,
    MoEConfig,
    check_ep_shards,
    expert_token_counts,
    moe_ffn_kernels,
    moe_overrides,
    route_tokens,
    routed_bytes,
)
from repro.serving.requests import Request
from repro.serving.simulator import ServingSimulator
from repro.serving.specdecode import SpecDecodeConfig


def tiny_causal(name="tiny-causal"):
    from repro.models.config import AttentionKind, AttentionSpec

    return ModelConfig(
        name, num_layers=2, d_model=128, num_heads=4, d_ff=256,
        attention=(AttentionSpec(AttentionKind.DENSE_CAUSAL),),
    )


class TestMoEConfig:
    def test_mixtral_registered(self):
        assert get_model("mixtral") is MIXTRAL_MOE
        assert get_model("mixtral-moe") is MIXTRAL_MOE
        assert MIXTRAL_MOE.is_moe

    def test_top_k_bounded_by_experts(self):
        with pytest.raises(ConfigError, match="top_k"):
            MoEConfig.from_dense(tiny_causal(), n_experts=4, top_k=8)

    def test_capacity_factor_floor(self):
        with pytest.raises(ConfigError, match="capacity_factor"):
            MoEConfig.from_dense(tiny_causal(), n_experts=4, top_k=2,
                                 capacity_factor=0.5)

    def test_degenerate_keeps_dense_name(self):
        dense = tiny_causal()
        degenerate = MoEConfig.from_dense(dense, n_experts=1, top_k=1)
        assert degenerate.name == dense.name
        assert not degenerate.is_moe
        moe = MoEConfig.from_dense(dense, n_experts=8, top_k=2)
        assert moe.name == "tiny-causal-8x2moe"

    def test_overrides_identity_for_dense(self):
        dense = tiny_causal()
        assert moe_overrides(dense, n_experts=1, top_k=1) is dense

    def test_overrides_collapse_moe_back_to_dense_pricing(self):
        collapsed = moe_overrides(MIXTRAL_MOE, n_experts=1, top_k=1)
        assert isinstance(collapsed, MoEConfig)
        assert not collapsed.is_moe


class TestRouting:
    def config(self, n_experts=8, top_k=2, capacity_factor=1.25):
        return MoEConfig.from_dense(tiny_causal(), n_experts=n_experts,
                                    top_k=top_k,
                                    capacity_factor=capacity_factor)

    def test_priced_counts_conserve_and_balance(self):
        config = self.config()
        counts = expert_token_counts(config, 100)
        assert sum(counts) == 100 * config.top_k
        assert max(counts) - min(counts) <= 1
        assert max(counts) <= config.expert_capacity(100)

    def test_random_routing_is_seed_deterministic(self):
        config = self.config()
        a, dropped_a = route_tokens(config, 64, seed=3)
        b, dropped_b = route_tokens(config, 64, seed=3)
        assert np.array_equal(a, b) and dropped_a == dropped_b

    def test_random_routing_conserves_slots(self):
        config = self.config(capacity_factor=1.0)
        assignments, dropped = route_tokens(config, 97, seed=1)
        kept = int((assignments >= 0).sum())
        assert kept + dropped == 97 * config.top_k
        loads = np.bincount(assignments[assignments >= 0],
                            minlength=config.n_experts)
        assert loads.max() <= config.expert_capacity(97)


class TestExpertParallel:
    def test_ep_needs_a_moe_model(self):
        with pytest.raises(ConfigError, match="n_experts > 1"):
            check_ep_shards(tiny_causal(), 2)

    def test_ep_must_divide_experts(self):
        with pytest.raises(ConfigError, match="shard"):
            check_ep_shards(MIXTRAL_MOE, 3)
        check_ep_shards(MIXTRAL_MOE, 4)  # 8 experts / 4 shards: fine

    def test_routed_bytes_scales_with_top_k(self):
        dense = tiny_causal()
        moe = MoEConfig.from_dense(dense, n_experts=8, top_k=2)
        assert routed_bytes(moe, 100, DType.FP16) == \
            2 * routed_bytes(dense, 100, DType.FP16)

    def test_ep_adds_alltoall_comm_time(self):
        from repro.cluster.costmodel import ShardedStepCostModel

        def comm(ep):
            return ShardedStepCostModel(
                MIXTRAL_MOE, "A100", plan="sdf", ep=ep,
            ).comm_time(256)

        assert comm(1) == 0.0  # tp=pp=ep=1: no collectives at all
        assert comm(2) > 0.0
        assert comm(4) > comm(2)  # more hops, less per-GPU keep-slice

    def test_moe_kernels_degenerate_to_single_expert_gemm(self):
        moe = MoEConfig.from_dense(tiny_causal(), n_experts=8, top_k=2)
        names = [k.name for k in moe_ffn_kernels(moe, m_tokens=64)]
        assert "dec_router_gate" in names
        assert "dec_router_softmax" in names
        assert "moe_dispatch" in names and "moe_combine" in names
        # EP=2 prices only the heaviest shard's experts.
        sharded = moe_ffn_kernels(moe, m_tokens=64, ep_shards=2)
        full_ff1 = [k for k in moe_ffn_kernels(moe, m_tokens=64)
                    if k.name == "dec_expert_ff1"]
        shard_ff1 = [k for k in sharded if k.name == "dec_expert_ff1"]
        assert sum(k.batch * k.m for k in shard_ff1) < \
            sum(k.batch * k.m for k in full_ff1)


class TestSpecDecodeConfig:
    def test_tokens_per_round(self):
        config = SpecDecodeConfig("gpt-neo-1.3b", draft_len=4,
                                  accept_rate=0.75)
        assert config.tokens_per_round == 1 + int(0.75 * 4)
        assert SpecDecodeConfig("x", draft_len=4,
                                accept_rate=0.0).tokens_per_round == 1
        assert SpecDecodeConfig("x", draft_len=4,
                                accept_rate=1.0).tokens_per_round == 5

    def test_validation(self):
        with pytest.raises(ServingError, match="draft_model"):
            SpecDecodeConfig(None)
        with pytest.raises(ServingError, match="accept_rate"):
            SpecDecodeConfig("x", accept_rate=1.5)
        with pytest.raises(Exception):
            SpecDecodeConfig("x", draft_len=0)


class TestSpecDecodeSchedule:
    def requests(self, n=4):
        return [Request(request_id=i, arrival_time=0.02 * i,
                        prompt_len=128, output_len=8)
                for i in range(n)]

    def run(self, **kwargs):
        sim = ServingSimulator(
            tiny_causal(), "A100", plan=PlanSource.of("baseline"),
            requests=self.requests(), chunk_tokens=256, max_batch=4,
            engine="event", **kwargs)
        return sim.run()

    def test_full_acceptance_matches_plain_schedule(self):
        plain = self.run()
        spec = self.run(draft_model=tiny_causal("tiny-draft"),
                        draft_len=4, accept_rate=1.0)
        assert spec.finished == plain.finished
        assert spec.generated_tokens == plain.generated_tokens
        assert spec.steps < plain.steps  # rounds compress decode steps

    def test_zero_acceptance_still_pays_the_draft(self):
        """Regression: a round whose every drafted token is rejected
        still ran the draft model's γ steps — at ``accept_rate=0`` the
        run must be strictly *slower* than not speculating."""
        plain = self.run()
        spec = self.run(draft_model=tiny_causal("tiny-draft"),
                        draft_len=4, accept_rate=0.0)
        assert spec.steps == plain.steps  # one token per round
        assert spec.makespan > plain.makespan

    def test_disabled_speculation_is_byte_identical(self):
        assert self.run().to_dict() == self.run(draft_model=None).to_dict()

    def test_epoch_engine_agrees_with_event_engine(self):
        kwargs = dict(draft_model=tiny_causal("tiny-draft"),
                      draft_len=2, accept_rate=0.5)
        event = ServingSimulator(
            tiny_causal(), "A100", plan=PlanSource.of("baseline"),
            requests=self.requests(), chunk_tokens=256, max_batch=4,
            engine="event", **kwargs).run()
        epoch = ServingSimulator(
            tiny_causal(), "A100", plan=PlanSource.of("baseline"),
            requests=self.requests(), chunk_tokens=256, max_batch=4,
            engine="epoch", **kwargs).run()
        assert event.to_dict() == epoch.to_dict()


class TestOracleCoverage:
    """Both new oracles are registered and pass their seeded cases."""

    @pytest.fixture(scope="class")
    def registry(self):
        from repro.verify.oracles import default_registry

        return default_registry()

    @pytest.mark.parametrize("name", ["moe.router_conservation",
                                      "serving.spec_decode_equivalence"])
    def test_registered_in_serving_family(self, registry, name):
        assert name in registry.names()
        oracle = registry.get(name)
        assert oracle.family == "serving"
        assert oracle in registry.family("serving")

    @pytest.mark.parametrize("name", ["moe.router_conservation",
                                      "serving.spec_decode_equivalence"])
    def test_passes_seeded_cases(self, registry, name):
        from repro.verify.cases import build_case, draw_params
        from repro.verify.fuzz import run_case

        oracle = registry.get(name)
        rng = np.random.default_rng(0)
        ran = 0
        for _ in range(8):
            case = build_case("serving", draw_params("serving", rng))
            if not oracle.applicable(case):
                continue
            ran += 1
            result = run_case(oracle, case)
            assert not result.failed, result
        assert ran > 0
