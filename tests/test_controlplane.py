"""Tests for the SLO-driven control plane.

Covers the arrival-process generators (legacy byte-identity,
determinism, mean-rate calibration), SLO tiers and assignment, the
cold-start model, fault schedules and the straggler cost wrapper, the
autoscaler policy in isolation, and the full control loop: determinism,
request conservation under failures, attainment monotone in the
replica budget, shedding behavior, the autoscaler-vs-static headline
scenario, and the report/CLI schema contract.
"""

import json

import numpy as np
import pytest

from repro.common.errors import ServingError
from repro.controlplane import (
    Autoscaler,
    AutoscalerConfig,
    ControlPlaneSimulator,
    DEFAULT_TIERS,
    FailureSchedule,
    SLOTier,
    SlowdownCost,
    assign_tiers,
    cold_start_time,
    parse_tiers,
    simulate_controlplane,
)
from repro.gpu.interconnect import NVLINK3, PCIE4
from repro.gpu.specs import get_gpu
from repro.models.config import get_model
from repro.serving import (
    DiurnalArrivals,
    MMPPArrivals,
    PoissonArrivals,
    ServingWorkload,
    make_arrival,
)


# --------------------------------------------------------------------
# Arrival processes
# --------------------------------------------------------------------

class TestArrivalProcesses:
    def test_default_workload_unchanged_by_refactor(self):
        """The factored-out Poisson process reproduces the legacy
        arrival stream bit for bit (the compatibility contract that
        keeps every historical seeded report byte-identical)."""
        for seed, rate, duration in ((0, 8.0, 10.0), (3, 2.5, 30.0)):
            legacy_rng = np.random.default_rng((seed, 0xA221))
            gaps = legacy_rng.exponential(
                1.0 / rate, size=max(16, int(rate * duration * 2) + 16))
            times = np.cumsum(gaps)
            while times[-1] < duration:
                more = legacy_rng.exponential(1.0 / rate,
                                              size=len(times))
                times = np.concatenate(
                    [times, times[-1] + np.cumsum(more)])
            legacy = times[times < duration]

            arrays = ServingWorkload(
                rate=rate, duration=duration, seed=seed).request_arrays()
            np.testing.assert_array_equal(arrays.arrival_time, legacy)

    def test_explicit_poisson_matches_default(self):
        base = ServingWorkload(rate=4.0, duration=8.0, seed=1)
        explicit = ServingWorkload(
            rate=4.0, duration=8.0, seed=1,
            arrival=PoissonArrivals(rate=4.0))
        np.testing.assert_array_equal(
            base.request_arrays().arrival_time,
            explicit.request_arrays().arrival_time)

    def test_mmpp_deterministic_and_bounded(self):
        arr = MMPPArrivals(rate=2.0, burst_rate=10.0, base_dwell=5.0,
                           burst_dwell=2.0)
        a = arr.sample(40.0, seed=9)
        b = arr.sample(40.0, seed=9)
        np.testing.assert_array_equal(a, b)
        assert np.all(np.diff(a) >= 0)
        assert a.min() >= 0.0 and a.max() < 40.0
        assert not np.array_equal(a, arr.sample(40.0, seed=10))

    def test_mmpp_mean_rate_empirical(self):
        arr = MMPPArrivals(rate=2.0, burst_rate=8.0, base_dwell=6.0,
                           burst_dwell=3.0)
        duration = 4000.0
        n = len(arr.sample(duration, seed=4))
        assert n / duration == pytest.approx(arr.mean_rate(), rel=0.1)

    def test_mmpp_burstier_than_poisson(self):
        """Index of dispersion of per-second counts must exceed the
        Poisson value of 1 — the whole point of the MMPP model."""
        arr = MMPPArrivals(rate=2.0, burst_rate=16.0, base_dwell=8.0,
                           burst_dwell=4.0)
        times = arr.sample(2000.0, seed=2)
        counts = np.bincount(times.astype(int), minlength=2000)
        assert counts.var() / counts.mean() > 2.0

    def test_mmpp_zero_rate_base_state_is_on_off(self):
        """A zero base rate is the classic ON/OFF process: every
        arrival must fall inside a burst dwell, and the empirical rate
        must match the burst-weighted mean."""
        arr = MMPPArrivals(rate=0.0, burst_rate=12.0, base_dwell=6.0,
                           burst_dwell=3.0)
        duration = 3000.0
        times = arr.sample(duration, seed=11)
        assert times.size > 0
        assert np.all(np.diff(times) >= 0)
        assert times.min() >= 0.0 and times.max() < duration
        n = len(times)
        assert n / duration == pytest.approx(arr.mean_rate(), rel=0.1)

    def test_mmpp_zero_rate_burst_state_allowed(self):
        arr = MMPPArrivals(rate=5.0, burst_rate=0.0, base_dwell=4.0,
                           burst_dwell=2.0)
        times = arr.sample(600.0, seed=3)
        assert len(times) / 600.0 == pytest.approx(arr.mean_rate(),
                                                   rel=0.1)

    def test_mmpp_both_rates_zero_rejected(self):
        with pytest.raises(ServingError):
            MMPPArrivals(rate=0.0, burst_rate=0.0)

    def test_mmpp_single_state_degenerates_to_poisson(self):
        """With equal rates the modulation is unobservable; the stream
        must be byte-identical to the stationary Poisson process, not
        merely statistically equivalent."""
        for rate, duration, seed in ((4.0, 25.0, 0), (1.5, 60.0, 7)):
            degenerate = MMPPArrivals(rate=rate, burst_rate=rate)
            poisson = PoissonArrivals(rate=rate)
            np.testing.assert_array_equal(
                degenerate.sample(duration, seed),
                poisson.sample(duration, seed))

    def test_diurnal_period_shorter_than_one_tick(self):
        """A period far below one second (many cycles per count tick)
        must still sample cleanly and average out to the mean rate."""
        arr = DiurnalArrivals(rate=20.0, period=0.01)
        duration = 200.0
        times = arr.sample(duration, seed=5)
        assert np.all(np.diff(times) >= 0)
        assert times.min() >= 0.0 and times.max() < duration
        assert len(times) / duration == pytest.approx(arr.mean_rate(),
                                                      rel=0.1)

    def test_diurnal_follows_day_curve(self):
        arr = DiurnalArrivals(rate=5.0, period=240.0)
        times = arr.sample(240.0, seed=6)
        np.testing.assert_array_equal(times, arr.sample(240.0, seed=6))
        # The trough hours (slots 2-4) must be much quieter than the
        # evening peak (slots 18-20).
        slot = (times / 10.0).astype(int)
        trough = np.isin(slot, (2, 3, 4)).sum()
        peak = np.isin(slot, (18, 19, 20)).sum()
        assert peak > 3 * max(trough, 1)

    def test_make_arrival_kinds_and_defaults(self):
        p = make_arrival("poisson", rate=3.0)
        assert isinstance(p, PoissonArrivals)
        m = make_arrival("mmpp", rate=3.0)
        assert isinstance(m, MMPPArrivals)
        assert m.burst_rate == pytest.approx(12.0)  # 4x default
        d = make_arrival("diurnal", rate=3.0, duration=60.0)
        assert isinstance(d, DiurnalArrivals)
        assert d.period == pytest.approx(60.0)
        with pytest.raises(ServingError):
            make_arrival("weibull", rate=3.0)

    def test_workloads_echo_arrival_in_reports(self):
        from repro.serving import simulate_serving

        arr = MMPPArrivals(rate=2.0, burst_rate=6.0)
        report = simulate_serving(
            "bert-large", "a100", rate=2.0, duration=3.0, seed=0,
            plans=("sdf",), arrival=arr)
        doc = report.to_json()
        assert doc["arrival"]["kind"] == "mmpp"
        plain = simulate_serving(
            "bert-large", "a100", rate=2.0, duration=3.0, seed=0,
            plans=("sdf",))
        assert "arrival" not in plain.to_json()


# --------------------------------------------------------------------
# Tiers, faults, cold start
# --------------------------------------------------------------------

class TestTiers:
    def test_parse_tiers_roundtrip(self):
        tiers = parse_tiers(
            "gold:0.2:0.3:0.05:0.999,bronze:0.8:2.0")
        assert [t.name for t in tiers] == ["gold", "bronze"]
        assert tiers[0].tpot_target == pytest.approx(0.05)
        assert tiers[0].attainment_target == pytest.approx(0.999)
        assert tiers[1].attainment_target == pytest.approx(0.99)

    def test_parse_tiers_rejects_garbage(self):
        from repro.common.errors import ConfigError

        for spec in ("", "a", "a:0:1", "a:0.5:1,a:0.5:1"):
            with pytest.raises((ServingError, ConfigError)):
                parse_tiers(spec)

    def test_assignment_deterministic_and_proportional(self):
        tiers = (SLOTier("a", share=0.75, ttft_target=1.0),
                 SLOTier("b", share=0.25, ttft_target=4.0))
        first = assign_tiers(4000, tiers, seed=3)
        np.testing.assert_array_equal(first,
                                      assign_tiers(4000, tiers, seed=3))
        share_a = float(np.mean(first == 0))
        assert share_a == pytest.approx(0.75, abs=0.05)

    def test_tier_meets_checks_both_targets(self):
        tier = SLOTier("t", share=1.0, ttft_target=0.5, tpot_target=0.1)
        assert tier.meets(ttft=0.4, tpot=0.05)
        assert not tier.meets(ttft=0.6, tpot=0.05)
        assert not tier.meets(ttft=0.4, tpot=0.2)


class TestFaultPrimitives:
    def test_random_schedule_deterministic_and_windowed(self):
        a = FailureSchedule.random(duration=20.0, seed=5, deaths=3,
                                   stragglers=2)
        b = FailureSchedule.random(duration=20.0, seed=5, deaths=3,
                                   stragglers=2)
        assert a == b
        for t in a.deaths:
            assert 2.0 <= t <= 18.0
        for t, slowdown in a.stragglers:
            assert 2.0 <= t <= 18.0
            assert slowdown > 1.0
        assert len(a.events()) == 5

    def test_schedule_validation(self):
        with pytest.raises(ServingError):
            FailureSchedule(deaths=(-1.0,))
        with pytest.raises(ServingError):
            FailureSchedule(stragglers=((1.0, 0.5),))

    def test_slowdown_cost_scales_both_components(self):
        from repro.cluster.costmodel import ShardedStepCostModel

        cost = ShardedStepCostModel(
            get_model("bert-large"), get_gpu("a100"), plan="sdf",
            tp=2, interconnect=NVLINK3)
        slow = SlowdownCost(cost, 2.0)
        base_total, base_comm = cost.step_cost(
            prefill=((128, 128),), decode_kv=[256, 512])
        slow_total, slow_comm = slow.step_cost(
            prefill=((128, 128),), decode_kv=[256, 512])
        assert slow_total == pytest.approx(2.0 * base_total)
        assert slow_comm == pytest.approx(2.0 * base_comm)
        assert slow.kv_bucket == cost.kv_bucket
        stacked = SlowdownCost(slow, 1.5)
        assert stacked.decode_step_cost([64])[0] == pytest.approx(
            3.0 * cost.decode_step_cost([64])[0])


class TestColdStart:
    def test_cold_start_positive_and_hardware_derived(self):
        model, gpu = get_model("bert-large"), get_gpu("a100")
        t_nvlink = cold_start_time(model, gpu, interconnect=NVLINK3)
        t_pcie = cold_start_time(model, gpu, interconnect=PCIE4)
        assert 0.0 < t_nvlink < t_pcie
        big = get_model("gpt-neo-1.3b")
        assert (cold_start_time(big, gpu, interconnect=PCIE4)
                > t_pcie)

    def test_sharding_splits_the_weight_load(self):
        model, gpu = get_model("gpt-neo-1.3b"), get_gpu("a100")
        whole = cold_start_time(model, gpu, interconnect=PCIE4)
        sharded = cold_start_time(model, gpu, tp=4, interconnect=PCIE4)
        # The weight-stream phase shrinks 4x; KV-pool init grows a bit
        # (more non-weight HBM to touch), so just require a real win.
        assert sharded < whole


# --------------------------------------------------------------------
# Autoscaler policy in isolation
# --------------------------------------------------------------------

class TestAutoscalerPolicy:
    def _scaler(self, **overrides):
        params = dict(
            min_replicas=1, max_replicas=4, control_interval=0.25,
            window=2.0, min_samples=3, high_watermark=1000.0,
            low_watermark=100.0, up_cooldown=0.25, down_cooldown=1.0)
        params.update(overrides)
        return Autoscaler(AutoscalerConfig(**params), DEFAULT_TIERS)

    def test_scales_up_on_slo_breach(self):
        scaler = self._scaler()
        for i in range(4):
            scaler.observe_first_token(0.1 * i, 0, ok=False)
        decision = scaler.decide(1.0, active=2, booting=0,
                                 backlog_per_replica=0.0, shed_delta=0)
        assert decision is not None and decision.delta > 0
        assert "slo-breach" in decision.reason

    def test_scales_up_on_backlog_and_respects_ceiling(self):
        scaler = self._scaler()
        decision = scaler.decide(1.0, active=2, booting=0,
                                 backlog_per_replica=5000.0,
                                 shed_delta=0)
        assert decision is not None and decision.reason == "backlog"
        at_max = scaler.decide(2.0, active=4, booting=0,
                               backlog_per_replica=5000.0, shed_delta=0)
        assert at_max is None

    def test_up_cooldown_suppresses_thrash(self):
        scaler = self._scaler()
        first = scaler.decide(1.0, active=1, booting=1,
                              backlog_per_replica=5000.0, shed_delta=0)
        assert first is not None
        again = scaler.decide(1.1, active=1, booting=2,
                              backlog_per_replica=5000.0, shed_delta=0)
        assert again is None

    def test_scales_down_only_when_quiet_and_attaining(self):
        scaler = self._scaler()
        for i in range(4):
            scaler.observe_first_token(1.8 + 0.05 * i, 0, ok=True)
        down = scaler.decide(2.0, active=3, booting=0,
                             backlog_per_replica=10.0, shed_delta=0)
        assert down is not None and down.delta == -1
        # While booting, never drain.
        hold = scaler.decide(4.0, active=3, booting=1,
                             backlog_per_replica=10.0, shed_delta=0)
        assert hold is None

    def test_below_min_boots_unconditionally(self):
        scaler = self._scaler(min_replicas=2)
        decision = scaler.decide(0.5, active=1, booting=0,
                                 backlog_per_replica=0.0, shed_delta=0)
        assert decision is not None and decision.delta == 1
        assert decision.reason == "below-min"


# --------------------------------------------------------------------
# The control loop
# --------------------------------------------------------------------

def _run(seed=23, *, replicas=2, autoscale=False, faults=None,
         shed=0.0, rate=2.0, burst=14.0, duration=18.0, cold=0.15,
         tiers=DEFAULT_TIERS, max_replicas=8):
    arrival = MMPPArrivals(rate=rate, burst_rate=burst, base_dwell=6.0,
                           burst_dwell=3.0)
    config = None
    if autoscale:
        config = AutoscalerConfig(
            min_replicas=replicas, max_replicas=max_replicas,
            control_interval=0.25, cold_start_s=cold)
    report = simulate_controlplane(
        "bert-large", "a100", rate=rate, duration=duration, seed=seed,
        plans=("sdf",), replicas=replicas, arrival=arrival,
        autoscaler=config, faults=faults, tiers=tiers,
        shed_backlog_tokens=shed, cold_start_s=cold)
    return report.plans["sdf"]


class TestControlLoop:
    def test_deterministic(self):
        faults = FailureSchedule(deaths=(6.0,), stragglers=((9.0, 2.0),))
        a = _run(seed=5, duration=12.0, autoscale=True, faults=faults)
        b = _run(seed=5, duration=12.0, autoscale=True, faults=faults)
        assert a.to_dict() == b.to_dict()

    def test_conservation_without_faults(self):
        plan = _run(seed=3, duration=10.0)
        assert plan.conservation_ok
        assert plan.arrived == plan.finished
        assert plan.shed == 0 and plan.rejected == 0

    def test_conservation_under_failures(self):
        """The fuzz oracle's identity, pinned on explicit schedules."""
        for seed in (1, 2):
            schedule = FailureSchedule.random(
                duration=12.0, seed=seed, deaths=2)
            plan = _run(seed=seed, duration=12.0, faults=schedule,
                        replicas=3)
            assert plan.conservation_ok
            assert plan.in_flight == 0
            assert sum(f.lost for f in plan.faults) == 0
            assert (plan.arrived
                    == plan.finished + plan.shed + plan.rejected)

    def test_replica_death_recovers_with_zero_lost(self):
        """ISSUE acceptance: a replica death mid-decode re-queues its
        residents, a replacement boots, and nothing is lost."""
        plan = _run(seed=23, duration=14.0, faults=FailureSchedule(
            deaths=(7.0,)), replicas=2)
        assert plan.conservation_ok
        (death,) = plan.faults
        assert death.kind == "death"
        assert death.requeued > 0
        assert death.lost == 0
        assert death.recovery_s > 0.0
        actions = [e.action for e in plan.timeline]
        assert "fail" in actions
        # Failover keeps the fleet at its static floor.
        assert "scale-up" in actions and "boot-complete" in actions
        assert plan.cold_starts >= 1

    def test_straggler_slows_but_conserves(self):
        quick = _run(seed=9, duration=10.0)
        slowed = _run(seed=9, duration=10.0, faults=FailureSchedule(
            stragglers=((4.0, 3.0),)))
        assert slowed.conservation_ok
        kinds = [f.kind for f in slowed.faults]
        assert kinds == ["straggler"]
        assert slowed.faults[0].slowdown == pytest.approx(3.0)
        assert slowed.e2e.p99 > quick.e2e.p99

    def test_attainment_monotone_in_replica_budget(self):
        """ISSUE acceptance: more replicas never hurt the SLO tier."""
        attainments = [
            _run(seed=23, replicas=n).tier("interactive").attainment
            for n in (1, 2, 4)
        ]
        assert attainments == sorted(attainments)
        assert attainments[-1] >= 0.99

    def test_autoscaler_beats_static_at_same_mean_capacity(self):
        """ISSUE acceptance: on a bursty MMPP stream the autoscaler
        holds the >=99% interactive tier while a static fleet of the
        same (rounded) mean replica count misses it."""
        auto = _run(seed=23, autoscale=True)
        tier = auto.tier("interactive")
        assert tier.attainment >= 0.99
        assert tier.attained

        static_n = max(1, round(auto.mean_replicas))
        static = _run(seed=23, replicas=static_n)
        static_tier = static.tier("interactive")
        assert static_tier.attainment < 0.99
        assert not static_tier.attained
        # The comparison is fair: the autoscaler did not just buy more
        # hardware-time than the static fleet it beat.
        assert auto.mean_replicas <= static_n + 0.5

    def test_shed_rate_zero_with_ample_capacity(self):
        """ISSUE acceptance: the shedder never fires when the fleet
        has headroom."""
        plan = _run(seed=7, replicas=4, shed=40_000.0, burst=4.0)
        assert plan.shed == 0
        assert plan.shed_rate == 0.0

    def test_shedding_prefers_low_priority_tier(self):
        plan = _run(seed=23, replicas=1, shed=900.0, burst=20.0,
                    duration=12.0)
        assert plan.conservation_ok
        assert plan.shed > 0
        batch = plan.tier("batch")
        interactive = plan.tier("interactive")
        assert batch.shed >= interactive.shed
        # Shed requests count against the tier's attainment.
        assert (batch.attained_requests
                <= batch.arrived - batch.shed)

    def test_mean_replicas_integral(self):
        plan = _run(seed=3, duration=8.0, replicas=3)
        assert plan.peak_replicas >= 3
        assert plan.mean_replicas == pytest.approx(
            plan.replica_seconds / plan.makespan)

    def test_controller_reads_obs_signals(self):
        """The autoscaler's attainment window is fed from first-token
        tracer instants, and replicas publish their backlog gauges —
        verify the signals exist on the shared ambient tracer."""
        from repro.obs import Tracer, tracing

        tracer = Tracer()
        arrival = MMPPArrivals(rate=2.0, burst_rate=10.0,
                               base_dwell=4.0, burst_dwell=2.0)
        with tracing(tracer):
            simulate_controlplane(
                "bert-large", "a100", rate=2.0, duration=6.0, seed=4,
                plans=("sdf",), replicas=2, arrival=arrival,
                autoscaler=AutoscalerConfig(min_replicas=2,
                                            max_replicas=4,
                                            cold_start_s=0.1),
                cold_start_s=0.1)
        names = {e.name for e in tracer.events if e.ph == "i"}
        assert "first-token" in names
        snapshot = tracer.metrics.snapshot()
        gauges = snapshot.get("gauges", snapshot)
        assert any("outstanding_tokens" in k for k in gauges)
        counters = snapshot.get("counters", snapshot)
        assert any("admitted" in k for k in counters)


# --------------------------------------------------------------------
# Report and schema contract
# --------------------------------------------------------------------

class TestReportContract:
    def test_controlplane_section_schema(self):
        plan = _run(seed=3, duration=6.0, faults=FailureSchedule(
            deaths=(3.0,)))
        doc = plan.to_dict()
        assert doc["schema"] == "repro.result/v1"
        assert doc["kind"] == "controlplane-plan"
        section = doc["controlplane"]
        assert section["schema"] == "repro.controlplane/v1"
        assert section["conservation_ok"] is True
        assert len(section["tiers"]) == len(DEFAULT_TIERS)
        assert section["faults"][0]["lost"] == 0
        json.dumps(doc)  # fully serializable

    def test_full_report_envelope(self):
        arrival = MMPPArrivals(rate=2.0, burst_rate=6.0)
        report = simulate_controlplane(
            "bert-large", "a100", rate=2.0, duration=4.0, seed=1,
            plans=("sdf",), replicas=2, arrival=arrival,
            cold_start_s=0.1)
        doc = report.to_dict()
        assert doc["kind"] == "controlplane-report"
        assert doc["seed"] == 1
        assert doc["arrival"]["kind"] == "mmpp"
        assert "sdf" in doc["plans"]
        json.dumps(doc)

    def test_oracle_registered(self):
        from repro.verify.oracles import default_registry

        registry = default_registry(refresh=True)
        assert ("controlplane.failure_conservation"
                in registry.names())
        oracle = registry.get("controlplane.failure_conservation")
        assert oracle.family == "serving"

    def test_conservation_oracle_passes_a_case(self):
        from repro.verify.cases import build_case
        from repro.verify.fuzz import run_case
        from repro.verify.oracles import default_registry

        oracle = default_registry().get(
            "controlplane.failure_conservation")
        case = build_case("serving", {"case_seed": 16, "dtype": "fp32"})
        assert oracle.applicable(case)
        result = run_case(oracle, case)
        assert not result.failed

    def test_rejects_bad_configuration(self):
        workload = ServingWorkload(rate=1.0, duration=2.0, seed=0)
        with pytest.raises(ServingError):
            ControlPlaneSimulator("bert-large", "a100",
                                  workload=workload, replicas=0)
        with pytest.raises(ServingError):
            ControlPlaneSimulator("bert-large", "a100",
                                  workload=workload, tiers=())
        with pytest.raises(ServingError):
            AutoscalerConfig(min_replicas=3, max_replicas=2)
        with pytest.raises(ServingError):
            AutoscalerConfig(high_watermark=10.0, low_watermark=20.0)
