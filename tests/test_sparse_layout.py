"""Tests for block-sparse layouts and pattern generators."""

import numpy as np
import pytest

from repro.common import ConfigError, ShapeError
from repro.sparse import (
    BlockSparseLayout,
    BlockSparseMatrix,
    bigbird_layout,
    causal_layout,
    dense_layout,
    gpt_neo_local_layout,
    longformer_layout,
    sliding_window_layout,
    strided_layout,
)


class TestLayout:
    def test_basic_statistics(self):
        mask = np.array([[1, 0], [1, 1]], dtype=bool)
        layout = BlockSparseLayout(mask, block_size=4)
        assert layout.nnz_blocks == 3
        assert layout.density == pytest.approx(0.75)
        assert layout.seq_len == 8
        assert list(layout.row_nnz_blocks()) == [1, 2]
        assert layout.mean_row_nnz == pytest.approx(1.5)
        assert layout.max_row_nnz == 2

    def test_nnz_elements_and_storage(self):
        layout = BlockSparseLayout(np.ones((4, 4), dtype=bool), block_size=8)
        assert layout.nnz_elements() == 16 * 64
        assert layout.storage_bytes() == 16 * 64 * 2

    def test_element_mask_expands_blocks(self):
        mask = np.array([[1, 0], [0, 1]], dtype=bool)
        layout = BlockSparseLayout(mask, block_size=2)
        element = layout.element_mask()
        assert element.shape == (4, 4)
        assert element[:2, :2].all() and element[2:, 2:].all()
        assert not element[:2, 2:].any() and not element[2:, :2].any()

    def test_rejects_empty_mask(self):
        with pytest.raises(ConfigError):
            BlockSparseLayout(np.zeros((2, 2), dtype=bool), block_size=4)

    def test_rejects_bad_ndim(self):
        with pytest.raises(ShapeError):
            BlockSparseLayout(np.ones(4, dtype=bool), block_size=4)

    def test_equality(self):
        a = dense_layout(64, 16)
        b = dense_layout(64, 16)
        c = dense_layout(64, 32)
        assert a == b
        assert a != c


class TestRoundTrip:
    def test_dense_roundtrip(self):
        layout = bigbird_layout(256, 32, seed=1)
        rng = np.random.default_rng(0)
        data = rng.standard_normal(
            (2, layout.nnz_blocks, 32, 32)
        ).astype(np.float32)
        matrix = BlockSparseMatrix(layout, data)
        dense = matrix.to_dense()
        back = BlockSparseMatrix.from_dense(dense, layout)
        np.testing.assert_array_equal(back.data, data)

    def test_to_dense_fill(self):
        layout = sliding_window_layout(64, 16, window_blocks=1)
        data = np.ones((1, layout.nnz_blocks, 16, 16), dtype=np.float32)
        dense = BlockSparseMatrix(layout, data).to_dense(fill=-np.inf)
        assert np.isneginf(dense[0, 0, -1])
        assert dense[0, 0, 0] == 1.0

    def test_matrix_shape_validation(self):
        layout = dense_layout(32, 16)
        with pytest.raises(ShapeError):
            BlockSparseMatrix(layout, np.zeros((1, 3, 16, 16)))


class TestPatterns:
    def test_dense_layout_full(self):
        layout = dense_layout(256, 64)
        assert layout.density == 1.0
        assert layout.nnz_blocks == 16

    def test_causal_layout_triangular(self):
        layout = causal_layout(256, 64)
        assert layout.nnz_blocks == 4 * 5 // 2
        assert not layout.mask[0, 1]
        assert layout.mask[3, 0]

    def test_sliding_window_band(self):
        layout = sliding_window_layout(512, 64, window_blocks=3)
        assert layout.mask[4, 3] and layout.mask[4, 4] and layout.mask[4, 5]
        assert not layout.mask[4, 6] and not layout.mask[4, 2]

    def test_causal_window(self):
        layout = sliding_window_layout(512, 64, window_blocks=3, causal=True)
        assert not layout.mask[4, 5]
        assert layout.mask[4, 2] and layout.mask[4, 4]

    def test_bigbird_has_global_rows_and_cols(self):
        layout = bigbird_layout(4096, 64, global_blocks=2)
        assert layout.mask[0].all() and layout.mask[1].all()
        assert layout.mask[:, 0].all() and layout.mask[:, 1].all()
        # Worst-case row is dense while the mean row is sparse: this is
        # the conservative-allocation scenario of Section 5.1.
        assert layout.max_row_nnz == layout.n_block_cols
        assert layout.mean_row_nnz < 0.25 * layout.n_block_cols

    def test_bigbird_density_linear_in_length(self):
        """Sparse attention is O(L): density falls as ~1/L (Section 2.2)."""
        d1 = bigbird_layout(2048, 64).density
        d2 = bigbird_layout(8192, 64).density
        assert d2 < d1 / 2.5

    def test_bigbird_deterministic_per_seed(self):
        a = bigbird_layout(1024, 64, seed=7)
        b = bigbird_layout(1024, 64, seed=7)
        c = bigbird_layout(1024, 64, seed=8)
        assert a == b
        assert a != c

    def test_bigbird_rejects_tiny_sequences(self):
        with pytest.raises(ConfigError):
            bigbird_layout(128, 64, window_blocks=3, global_blocks=2)

    def test_longformer_window_width(self):
        layout = longformer_layout(4096, 64, window=512)
        inner = layout.row_nnz_blocks()[16]  # away from edges/global rows
        assert inner == pytest.approx(8 + 1, abs=1)  # window blocks + global

    def test_gpt_neo_local_is_causal(self):
        layout = gpt_neo_local_layout(1024, 64, window=256)
        assert not np.triu(layout.mask, k=1).any()
        assert layout.row_nnz_blocks()[8] == 4  # 256/64 window blocks

    def test_strided_layout_causal(self):
        layout = strided_layout(1024, 64, stride_blocks=4)
        assert not np.triu(layout.mask, k=1).any()
        assert layout.mask[10, 3] and layout.mask[10, 7]

    def test_window_must_divide_block_size(self):
        with pytest.raises(ShapeError):
            longformer_layout(4096, 64, window=100)
