"""Tests for autoregressive generation with a KV cache."""

import pytest

from repro.common import ConfigError
from repro.models import BERT_LARGE, GPT_NEO_1_3B
from repro.models.generation import GenerationSession


@pytest.fixture(scope="module")
def small_run():
    return GenerationSession(
        GPT_NEO_1_3B, prompt_len=1024, generated_tokens=16
    ).simulate()


class TestGeneration:
    def test_rejects_non_autoregressive_models(self):
        with pytest.raises(ConfigError, match="autoregressive"):
            GenerationSession(BERT_LARGE)

    def test_phases_accounted(self, small_run):
        assert small_run.prefill_time > 0
        assert small_run.decode_time > 0
        assert small_run.total_time == pytest.approx(
            small_run.prefill_time + small_run.decode_time
        )

    def test_decode_kernel_count(self, small_run):
        # 15 kernels per layer per step, 24 layers, 16 steps.
        expected = 15 * GPT_NEO_1_3B.num_layers * 16
        assert len(small_run.decode_profile) == expected

    def test_tokens_per_second_consistent(self, small_run):
        assert small_run.time_per_token == pytest.approx(
            small_run.decode_time / 16
        )
        assert small_run.tokens_per_second == pytest.approx(
            1 / small_run.time_per_token
        )

    def test_kv_cache_size(self, small_run):
        # 2 (K and V) x layers x (prompt + generated) x d_model x fp16.
        expected = 2 * 24 * (1024 + 16) * 2048 * 2
        assert small_run.kv_cache_bytes == expected

    def test_decode_step_cost_grows_with_kv_length(self):
        short = GenerationSession(GPT_NEO_1_3B, prompt_len=512,
                                  generated_tokens=4).simulate()
        long = GenerationSession(GPT_NEO_1_3B, prompt_len=8192,
                                 generated_tokens=4).simulate()
        # Longer cache -> more K/V bytes per step -> slower tokens.
        assert long.time_per_token > short.time_per_token

    def test_decode_dominated_by_weights_not_softmax(self, small_run):
        """Decode attention rows are 1 x L: softmax is a rounding error
        next to streaming the weights."""
        by_cat = small_run.decode_profile.time_by_category()
        weights_time = by_cat["fc"] + by_cat["feedforward"]
        assert by_cat["softmax"] < 0.2 * weights_time

    def test_recomposition_helps_prefill_not_decode(self):
        """The honest scoping of the paper's technique: prefill gains,
        decode is unaffected (its attention rows are tiny)."""
        base = GenerationSession(GPT_NEO_1_3B, prompt_len=4096,
                                 generated_tokens=8,
                                 plan="baseline").simulate()
        sdf = GenerationSession(GPT_NEO_1_3B, prompt_len=4096,
                                generated_tokens=8, plan="sdf").simulate()
        prefill_speedup = base.prefill_time / sdf.prefill_time
        decode_ratio = base.decode_time / sdf.decode_time
        assert prefill_speedup > 1.08
        assert decode_ratio == pytest.approx(1.0, abs=0.01)

    def test_local_attention_caps_decode_reads(self):
        """GPT-Neo's local layers attend to a fixed window, so their
        decode cost does not grow with the cache."""
        session = GenerationSession(GPT_NEO_1_3B, prompt_len=4096,
                                    generated_tokens=1)
        local_kernels = session._decode_layer_kernels(layer=1, kv_len=4097)
        dense_kernels = session._decode_layer_kernels(layer=0, kv_len=4097)
        local_qk = next(k for k in local_kernels if k.name == "dec_qk_matmul")
        dense_qk = next(k for k in dense_kernels if k.name == "dec_qk_matmul")
        assert local_qk.n == 256   # the local window
        assert dense_qk.n == 4097  # the full cache


class TestChunkedPrefill:
    def test_chunk_must_divide_prompt(self):
        with pytest.raises(ConfigError, match="divisible"):
            GenerationSession(GPT_NEO_1_3B, prompt_len=1000,
                              prefill_chunk=512)

    def test_chunked_prefill_runs(self):
        result = GenerationSession(GPT_NEO_1_3B, prompt_len=2048,
                                   generated_tokens=2,
                                   prefill_chunk=512).simulate()
        assert result.prefill_time > 0
        # 4 chunks x 24 layers x 15 kernels per layer step.
        assert len(result.prefill.profile) == 4 * 24 * 15

    def test_chunking_costs_modest_latency(self):
        """Chunked prefill trades some latency for bounded memory."""
        whole = GenerationSession(GPT_NEO_1_3B, prompt_len=4096,
                                  generated_tokens=1).simulate()
        chunked = GenerationSession(GPT_NEO_1_3B, prompt_len=4096,
                                    generated_tokens=1,
                                    prefill_chunk=1024).simulate()
        ratio = chunked.prefill_time / whole.prefill_time
        assert 0.5 < ratio < 2.5

    def test_chunking_bounds_attention_memory(self):
        """The rectangular C x kv attention matrix is the peak; it is
        far smaller than the single-shot L x L matrix."""
        chunk, prompt = 512, 4096
        heads = GPT_NEO_1_3B.num_heads
        peak_chunked = heads * chunk * prompt * 2     # C x L fp16
        peak_whole = heads * prompt * prompt * 2      # L x L fp16
        assert peak_chunked == peak_whole // (prompt // chunk)
