"""Unit tests for the repro.common substrate."""

import numpy as np
import pytest

from repro.common import DType, ConfigError, ShapeError
from repro.common.validation import (
    require_divisible,
    require_non_negative,
    require_positive,
    require_power_of_two,
)


class TestDType:
    def test_fp16_nbytes(self):
        assert DType.FP16.nbytes == 2

    def test_fp32_nbytes(self):
        assert DType.FP32.nbytes == 4

    def test_numpy_types(self):
        assert DType.FP16.np is np.float16
        assert DType.FP32.np is np.float32

    def test_quantize_fp16_rounds(self):
        value = np.array([1.0 + 2**-12], dtype=np.float64)
        quantized = DType.FP16.quantize(value)
        assert quantized.dtype == np.float32
        assert quantized[0] == np.float32(np.float16(value[0]))

    def test_quantize_fp32_keeps_value(self):
        value = np.array([1.0 + 2**-12])
        quantized = DType.FP32.quantize(value)
        assert quantized.dtype == np.float32
        np.testing.assert_allclose(quantized, value.astype(np.float32))

    def test_quantize_fp16_returns_float32_storage(self):
        out = DType.FP16.quantize(np.ones((3, 3)))
        assert out.dtype == np.float32

    def test_str(self):
        assert str(DType.FP16) == "fp16"
        assert str(DType.FP32) == "fp32"


class TestValidation:
    def test_require_positive_accepts(self):
        require_positive("x", 1)

    def test_require_positive_rejects_zero(self):
        with pytest.raises(ConfigError, match="x must be positive"):
            require_positive("x", 0)

    def test_require_non_negative_accepts_zero(self):
        require_non_negative("x", 0)

    def test_require_non_negative_rejects(self):
        with pytest.raises(ConfigError):
            require_non_negative("x", -1)

    def test_require_divisible_accepts(self):
        require_divisible("L", 4096, 64)

    def test_require_divisible_rejects(self):
        with pytest.raises(ShapeError, match="divisible"):
            require_divisible("L", 100, 64)

    def test_require_divisible_bad_divisor(self):
        with pytest.raises(ConfigError):
            require_divisible("L", 100, 0)

    def test_require_power_of_two_accepts(self):
        for value in (1, 2, 64, 4096):
            require_power_of_two("T", value)

    @pytest.mark.parametrize("value", [0, 3, 12, -4])
    def test_require_power_of_two_rejects(self, value):
        with pytest.raises(ConfigError):
            require_power_of_two("T", value)
