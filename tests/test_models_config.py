"""Tests for model configurations and weights."""

import numpy as np
import pytest

from repro.common import ConfigError
from repro.models import (
    AttentionKind,
    AttentionSpec,
    BERT_LARGE,
    BIGBIRD_LARGE,
    GPT_NEO_1_3B,
    LONGFORMER_LARGE,
    ModelConfig,
    ModelWeights,
    all_models,
    get_model,
)
from repro.models.weights import make_layer_weights


class TestPresets:
    def test_bert_large(self):
        assert BERT_LARGE.num_layers == 24
        assert BERT_LARGE.d_model == 1024
        assert BERT_LARGE.num_heads == 16
        assert BERT_LARGE.d_ff == 4096
        assert BERT_LARGE.d_head == 64
        assert not BERT_LARGE.is_sparse

    def test_gpt_neo(self):
        assert GPT_NEO_1_3B.d_model == 2048
        assert GPT_NEO_1_3B.d_head == 128
        assert GPT_NEO_1_3B.d_ff == 8192
        # Alternating dense-causal / local-causal layers.
        assert GPT_NEO_1_3B.layer_attention(0).kind is AttentionKind.DENSE_CAUSAL
        assert GPT_NEO_1_3B.layer_attention(1).kind is AttentionKind.LOCAL_CAUSAL
        assert GPT_NEO_1_3B.layer_attention(2).kind is AttentionKind.DENSE_CAUSAL
        assert GPT_NEO_1_3B.is_sparse

    def test_bigbird_and_longformer_sparse(self):
        for config in (BIGBIRD_LARGE, LONGFORMER_LARGE):
            assert config.is_sparse
            spec = config.layer_attention(0)
            layout = spec.layout(4096)
            assert layout is not None
            assert layout.density < 0.3

    def test_unique_layer_specs(self):
        assert len(BERT_LARGE.unique_layer_specs()) == 1
        specs = GPT_NEO_1_3B.unique_layer_specs()
        assert len(specs) == 2
        assert all(count == 12 for _, count in specs)
        assert sum(count for _, count in specs) == 24

    def test_get_model(self):
        assert get_model("bert") is BERT_LARGE
        assert get_model("BigBird-Large") is BIGBIRD_LARGE
        with pytest.raises(ConfigError):
            get_model("t5")

    def test_all_models_order(self):
        names = [m.name for m in all_models()]
        assert names == ["BERT-large", "GPT-Neo-1.3B", "BigBird-large",
                         "Longformer-large"]

    def test_causal_flags(self):
        assert GPT_NEO_1_3B.layer_attention(0).is_causal
        assert GPT_NEO_1_3B.layer_attention(1).is_causal
        assert not BERT_LARGE.layer_attention(0).is_causal
        assert not BIGBIRD_LARGE.layer_attention(0).is_causal

    def test_dense_spec_has_no_layout(self):
        assert BERT_LARGE.layer_attention(0).layout(4096) is None


class TestValidation:
    def test_heads_must_divide_d_model(self):
        with pytest.raises(Exception):
            ModelConfig(name="bad", num_layers=2, d_model=100, num_heads=16,
                        d_ff=400, attention=(AttentionSpec(AttentionKind.DENSE),))

    def test_empty_attention_cycle(self):
        with pytest.raises(ConfigError):
            ModelConfig(name="bad", num_layers=2, d_model=64, num_heads=4,
                        d_ff=256, attention=())

    def test_layer_out_of_range(self):
        with pytest.raises(ConfigError):
            BERT_LARGE.layer_attention(24)


class TestWeights:
    def test_shapes(self):
        w = make_layer_weights(GPT_NEO_1_3B, 0)
        assert w.wq.shape == (2048, 2048)
        assert w.w_ff1.shape == (2048, 8192)
        assert w.b_ff2.shape == (2048,)

    def test_deterministic(self):
        a = make_layer_weights(BERT_LARGE, 3, seed=1)
        b = make_layer_weights(BERT_LARGE, 3, seed=1)
        np.testing.assert_array_equal(a.wq, b.wq)

    def test_layers_differ(self):
        a = make_layer_weights(BERT_LARGE, 0)
        b = make_layer_weights(BERT_LARGE, 1)
        assert not np.array_equal(a.wq, b.wq)

    def test_cache(self):
        weights = ModelWeights(BERT_LARGE)
        assert weights.layer(0) is weights.layer(0)
