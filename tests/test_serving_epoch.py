"""Equivalence tests for the epoch-batched simulation core.

The epoch engine, the segment-deduplicated step pricing, and the
sharded cluster mode are pure performance work: every path must
produce reports *byte-identical* (as serialized JSON) to the classic
one-step-at-a-time event loop.  These tests pin that contract across
the regimes that exercise different epoch-termination edges — steady
decode, arrival-dense streams, preemption under tight memory, tracing,
streaming aggregation, and worker-count sweeps.
"""

import dataclasses
import json

import pytest

from repro.common.dtypes import DType
from repro.common.errors import ServingError
from repro.gpu.specs import get_gpu
from repro.models.config import get_model
from repro.models.footprint import weight_bytes
from repro.serving import (
    Request,
    ServingSimulator,
    ServingWorkload,
    StepCostModel,
)
from repro.serving.engine import sequential_sum


def tiny_gpu(model_name="bert-large", blocks=24, block_tokens=64,
             reserve_fraction=0.1):
    """An A100 variant small enough to force queuing and preemption."""
    model = get_model(model_name)
    bytes_per_token = 2 * model.num_layers * model.d_model * 2
    pool = blocks * block_tokens * bytes_per_token
    weights = weight_bytes(model, DType.FP16)
    hbm = int((pool + weights) / (1 - reserve_fraction)) + 1
    return dataclasses.replace(get_gpu("a100"), hbm_bytes=hbm)


def serving_doc(gpu="a100", engine="epoch", **kwargs):
    defaults = dict(rate=4.0, duration=8.0, seed=7)
    defaults.update(kwargs)
    workload = ServingWorkload(
        rate=defaults.pop("rate"), duration=defaults.pop("duration"),
        seed=defaults.pop("seed"),
        **{k: defaults.pop(k) for k in ("max_prompt", "mean_output")
           if k in defaults})
    sim = ServingSimulator("bert-large", gpu, plan="sdf",
                           workload=workload, engine=engine, **defaults)
    return json.dumps(sim.run().to_json(), sort_keys=True)


def cluster_doc(engine="epoch", **kwargs):
    from repro.cluster import simulate_cluster

    defaults = dict(rate=6.0, duration=6.0, seed=3, replicas=3,
                    plans=("baseline", "sdf"))
    defaults.update(kwargs)
    report = simulate_cluster("bert-large", "a100", engine=engine,
                              **defaults)
    return json.dumps(report.to_dict(), sort_keys=True)


class TestServingEquivalence:
    def test_small_stream_byte_identical(self):
        assert serving_doc(engine="event") == serving_doc(engine="epoch")

    def test_decode_heavy_stream_byte_identical(self):
        # Long outputs, short prompts: the regime where epochs batch
        # hundreds of pure-decode steps.
        kwargs = dict(rate=1.0, duration=30.0, max_prompt=512,
                      mean_output=256)
        assert serving_doc(engine="event", **kwargs) \
            == serving_doc(engine="epoch", **kwargs)

    def test_preemption_byte_identical(self):
        # Tight memory forces evict-and-recompute; the epoch fast path
        # must hand exactly those steps back to the classic loop.
        gpu = tiny_gpu(blocks=48, reserve_fraction=0.0)
        kwargs = dict(rate=8.0, duration=10.0, seed=3, mean_output=128,
                      max_batch=4, reserve_fraction=0.0)
        event = serving_doc(gpu=gpu, engine="event", **kwargs)
        epoch = serving_doc(gpu=gpu, engine="epoch", **kwargs)
        assert event == epoch
        assert json.loads(event)["preemption_events"] > 0

    def test_max_epoch_sweep_byte_identical(self):
        # Every epoch cap — including degenerate one-step epochs —
        # reproduces the event loop exactly.
        reference = serving_doc(engine="event")
        for max_epoch in (1, 2, 3, 4096):
            assert serving_doc(engine="epoch", max_epoch=max_epoch) \
                == reference

    def test_streaming_mode_byte_identical_and_flagged(self):
        # Forcing the cutover to zero exercises the streaming
        # aggregation path under both engines.
        event = serving_doc(engine="event", latency_cutover=0)
        epoch = serving_doc(engine="epoch", latency_cutover=0)
        assert event == epoch
        assert json.loads(epoch)["approx_percentiles"] is True

    def test_exact_mode_has_no_approx_flag(self):
        assert "approx_percentiles" not in json.loads(serving_doc())

    def test_traced_run_byte_identical(self):
        from repro.obs.tracer import tracing

        docs = {}
        for engine in ("event", "epoch"):
            with tracing():
                docs[engine] = serving_doc(engine=engine)
        assert docs["event"] == docs["epoch"]


class TestSegmentPricing:
    def test_decode_step_time_bit_identical_to_step_time(self):
        import numpy as np

        cost = StepCostModel(get_model("gpt-neo-1.3b"), get_gpu("a100"),
                             plan="sdf")
        rng = np.random.default_rng(0)
        for _ in range(50):
            batch = int(rng.integers(1, 33))
            decode_kv = [int(v) for v in rng.integers(1, 4096, size=batch)]
            assert cost.decode_step_time(decode_kv) \
                == cost.step_time(decode_kv=decode_kv)
        assert cost.decode_step_time([]) == 0.0

    def test_sharded_decode_step_cost_matches_step_cost(self):
        import numpy as np

        from repro.cluster import ShardedStepCostModel

        cost = ShardedStepCostModel(get_model("bert-large"), get_gpu("a100"),
                                    plan="sdf", tp=2)
        rng = np.random.default_rng(1)
        for _ in range(20):
            batch = int(rng.integers(1, 17))
            decode_kv = [int(v) for v in rng.integers(1, 2048, size=batch)]
            assert cost.decode_step_cost(decode_kv) \
                == cost.step_cost(decode_kv=decode_kv)

    def test_sequential_sum_matches_running_addition(self):
        values = [0.1, 0.2, 0.30000000000000004, 1e-18, 5.5]
        total = 3.7
        for v in values:
            total += v
        assert sequential_sum(3.7, values) == total
        assert sequential_sum(3.7, []) == 3.7


class TestClusterEquivalence:
    def test_serial_event_vs_epoch_byte_identical(self):
        assert cluster_doc(engine="event") == cluster_doc(engine="epoch")

    def test_stateful_policies_byte_identical(self):
        for policy in ("least-outstanding", "prefix-affinity"):
            kwargs = dict(policy=policy, prefix_groups=4)
            assert cluster_doc(engine="event", **kwargs) \
                == cluster_doc(engine="epoch", **kwargs)

    def test_sharded_matches_serial_across_worker_counts(self):
        reference = cluster_doc(engine="epoch")
        for jobs in (1, 2, 3):
            assert cluster_doc(engine="epoch", jobs=jobs) == reference

    def test_sharded_streaming_deterministic_across_jobs(self):
        docs = {jobs: cluster_doc(latency_cutover=0, jobs=jobs)
                for jobs in (1, 2)}
        assert docs[1] == docs[2]
        plan = json.loads(docs[1])["plans"]["sdf"]
        assert plan["approx_percentiles"] is True

    def test_stateful_policy_rejects_sharding(self):
        from repro.cluster import ClusterSimulator

        with pytest.raises(ServingError):
            ClusterSimulator(
                "bert-large", "a100",
                workload=ServingWorkload(rate=1.0, duration=1.0, seed=0),
                policy="least-outstanding", jobs=2,
            )

    def test_tracing_rejects_sharding(self):
        from repro.cluster import ClusterSimulator
        from repro.obs.tracer import tracing

        sim = ClusterSimulator(
            "bert-large", "a100",
            workload=ServingWorkload(rate=1.0, duration=1.0, seed=0),
            jobs=2,
        )
        with tracing():
            with pytest.raises(ServingError):
                sim.run()

    def test_requires_exactly_one_source(self):
        from repro.cluster import ClusterSimulator

        workload = ServingWorkload(rate=1.0, duration=1.0, seed=0)
        requests = [Request(request_id=0, arrival_time=0.0,
                            prompt_len=64, output_len=2)]
        with pytest.raises(ServingError):
            ClusterSimulator("bert-large", "a100")
        with pytest.raises(ServingError):
            ClusterSimulator("bert-large", "a100", requests=requests,
                             workload=workload)
