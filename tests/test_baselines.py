"""Tests for the Fig. 7 library emulation profiles."""

import pytest

from repro.common import ConfigError
from repro.baselines import (
    AUTOTVM,
    DEEPSPEED,
    FASTER_TRANSFORMER,
    HUGGINGFACE,
    OUR_BASELINE,
    TENSORRT,
    all_libraries,
    simulate_library,
)
from repro.models import BERT_LARGE, BIGBIRD_LARGE, InferenceSession


class TestLibraryOrdering:
    """Fig. 7: HuggingFace slowest; TensorRT/DeepSpeed and our baseline
    within a few percent of each other."""

    @pytest.fixture(scope="class")
    def bert_times(self):
        return {
            lib.name: simulate_library(lib, BERT_LARGE).total_time
            for lib in all_libraries()
        }

    def test_huggingface_slowest(self, bert_times):
        others = [t for name, t in bert_times.items() if name != "HuggingFace"]
        assert bert_times["HuggingFace"] > max(others)

    def test_ours_matches_tensorrt_on_dense(self, bert_times):
        """Section 4: 'our baseline and TensorRT were similar
        (difference less than 1%)'."""
        ratio = bert_times["Ours (baseline)"] / bert_times["TensorRT"]
        assert ratio == pytest.approx(1.0, abs=0.01)

    def test_best_libraries_within_8_percent(self, bert_times):
        """Section 4: baseline within 8% of the best library."""
        for name in ("FasterTransformer", "TensorRT", "DeepSpeed"):
            ratio = bert_times[name] / bert_times["Ours (baseline)"]
            assert 0.92 <= ratio <= 1.08, name

    def test_autotvm_about_1_5x_slower(self):
        """Section 4: 'our baseline is 1.49x faster than [AutoTVM]'."""
        ours = simulate_library(OUR_BASELINE, BERT_LARGE).total_time
        tvm = simulate_library(AUTOTVM, BERT_LARGE).total_time
        assert tvm / ours == pytest.approx(1.49, rel=0.08)

    def test_sparse_comparison(self):
        times = {
            lib.name: simulate_library(lib, BIGBIRD_LARGE).total_time
            for lib in (HUGGINGFACE, DEEPSPEED, OUR_BASELINE)
        }
        assert times["HuggingFace"] > times["DeepSpeed"]
        ratio = times["Ours (baseline)"] / times["DeepSpeed"]
        assert 0.9 <= ratio <= 1.05


class TestProfileMechanics:
    def test_autotvm_rejects_sparse(self):
        with pytest.raises(ConfigError, match="block-sparse"):
            simulate_library(AUTOTVM, BIGBIRD_LARGE)

    def test_standalone_scale_mask_adds_traffic(self):
        hg = simulate_library(HUGGINGFACE, BERT_LARGE)
        ft = simulate_library(FASTER_TRANSFORMER, BERT_LARGE)
        assert hg.total_dram_bytes > ft.total_dram_bytes

    def test_our_baseline_equals_session_baseline(self):
        """The OUR_BASELINE profile is exactly the library's own
        BASELINE plan — no hidden differences."""
        via_profile = simulate_library(OUR_BASELINE, BERT_LARGE)
        via_session = InferenceSession(BERT_LARGE, plan="baseline").simulate()
        assert via_profile.total_time == pytest.approx(via_session.total_time)
        assert via_profile.total_dram_bytes == pytest.approx(
            via_session.total_dram_bytes
        )

    def test_all_libraries_line_up(self):
        names = [lib.name for lib in all_libraries()]
        assert names == ["HuggingFace", "FasterTransformer", "TensorRT",
                         "DeepSpeed", "Ours (baseline)"]

    def test_gemm_scale_slows_compute(self):
        fast = simulate_library(TENSORRT, BERT_LARGE, seq_len=1024)
        slow = simulate_library(AUTOTVM, BERT_LARGE, seq_len=1024)
        assert slow.total_time > fast.total_time
