"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    assert main(list(argv)) == 0
    return capsys.readouterr().out


class TestCLI:
    def test_simulate(self, capsys):
        out = run_cli(capsys, "simulate", "--model", "bert-large",
                      "--seq-len", "1024")
        assert "BERT-large on A100" in out
        assert "softmax share" in out
        assert "legend:" in out

    def test_compare(self, capsys):
        out = run_cli(capsys, "compare", "--model", "bigbird-large",
                      "--seq-len", "2048")
        assert "baseline" in out and "sdf" in out
        assert "speedup" in out

    def test_breakdown(self, capsys):
        out = run_cli(capsys, "breakdown", "--seq-len", "1024")
        for name in ("BERT-large", "GPT-Neo-1.3B", "BigBird-large",
                     "Longformer-large"):
            assert name in out

    def test_libraries(self, capsys):
        out = run_cli(capsys, "libraries", "--seq-len", "1024")
        assert "HuggingFace" in out
        assert "TensorRT" in out

    def test_sweep(self, capsys):
        out = run_cli(capsys, "sweep", "--model", "bert-large",
                      "--values", "1024,2048")
        assert "1024" in out and "2048" in out
        assert out.count("x") >= 2

    def test_sweep_batch_axis(self, capsys):
        out = run_cli(capsys, "sweep", "--model", "longformer-large",
                      "--axis", "batch", "--values", "1,4",
                      "--seq-len", "2048")
        assert "batch" in out

    def test_generate(self, capsys):
        out = run_cli(capsys, "generate", "--tokens", "4",
                      "--seq-len", "512")
        assert "prefill latency" in out
        assert "tokens/s" in out

    def test_trace(self, capsys, tmp_path):
        path = tmp_path / "trace.json"
        out = run_cli(capsys, "trace", "--seq-len", "1024",
                      "--output", str(path))
        assert "kernel slices" in out
        data = json.loads(path.read_text())
        assert data["schema"] == "repro.trace/v1"
        slices = [e for e in data["traceEvents"] if e["ph"] == "X"]
        # One span per distinct kernel evaluation (the simulation cache
        # deduplicates identical launches) plus the simulate() span.
        assert len(slices) > 14
        kernel = [e for e in slices if e["cat"] == "kernel"]
        assert kernel
        assert all("dram_bytes" in e["args"] for e in kernel)
        assert all("bound" in e["args"] for e in kernel)

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_gpu_option(self, capsys):
        out = run_cli(capsys, "simulate", "--gpu", "t4",
                      "--seq-len", "1024")
        assert "on T4" in out

    def test_footprint(self, capsys):
        out = run_cli(capsys, "footprint", "--model", "bert-large",
                      "--seq-len", "2048")
        assert "attention (GB)" in out
        assert "sdf" in out

    def test_roofline(self, capsys):
        out = run_cli(capsys, "roofline", "--seq-len", "1024")
        assert "machine balance" in out
        assert "regime" in out

    def test_verify_quick(self, capsys):
        out = run_cli(capsys, "verify", "--quick")
        assert "4/4" in out
        assert "PASS" in out

    def test_model_json(self, capsys, tmp_path):
        from repro.models import BIGBIRD_LARGE
        from repro.models.serialization import config_to_json

        path = tmp_path / "model.json"
        path.write_text(config_to_json(BIGBIRD_LARGE))
        out = run_cli(capsys, "simulate", "--model-json", str(path),
                      "--seq-len", "2048")
        assert "BigBird-large" in out

    def test_parallel(self, capsys):
        out = run_cli(capsys, "parallel", "--model", "bert-large",
                      "--seq-len", "2048")
        assert "GPUs" in out and "comm share" in out
        assert "8" in out

    def test_serve_sim_json(self, capsys):
        out = run_cli(capsys, "serve-sim", "--model", "bert-large",
                      "--gpu", "a100", "--rate", "4", "--duration", "4",
                      "--seed", "0", "--json")
        report = json.loads(out)
        assert report["schema"] == "repro.result/v1"
        assert report["model"] == "BERT-large"
        assert set(report["plans"]) == {"baseline", "sdf"}
        for plan in report["plans"].values():
            assert plan["finished"] + plan["rejected"] \
                == plan["num_requests"]
            assert "p99" in plan["ttft_s"]
            assert plan["throughput_tokens_per_s"] > 0

    def test_serve_sim_deterministic(self, capsys):
        argv = ("serve-sim", "--rate", "4", "--duration", "4",
                "--seed", "0")
        assert run_cli(capsys, *argv) == run_cli(capsys, *argv)

    def test_serve_sim_table(self, capsys):
        out = run_cli(capsys, "serve-sim", "--rate", "4",
                      "--duration", "4")
        assert "TTFT p50/p99" in out
        assert "sdf over baseline" in out

    def test_serve_sim_output_file(self, capsys, tmp_path):
        path = tmp_path / "report.json"
        out = run_cli(capsys, "serve-sim", "--rate", "2",
                      "--duration", "3", "--output", str(path))
        assert f"wrote {path}" in out
        assert "plans" in json.loads(path.read_text())

    def test_serve_sim_trace_file(self, capsys, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            '{"arrival_time": 0.0, "prompt_len": 256, "output_len": 8}\n'
            '{"arrival_time": 0.2, "prompt_len": 512, "output_len": 4}\n'
        )
        out = run_cli(capsys, "serve-sim", "--trace-file", str(path),
                      "--plans", "sdf", "--json")
        report = json.loads(out)
        assert report["num_requests"] == 2
        assert list(report["plans"]) == ["sdf"]

    def test_cluster_sim_json(self, capsys):
        out = run_cli(capsys, "cluster-sim", "--model", "bert-large",
                      "--gpu", "a100", "--rate", "2", "--duration", "3",
                      "--seed", "0", "--replicas", "2", "--tp", "2",
                      "--policy", "least-outstanding", "--plans", "sdf",
                      "--json")
        report = json.loads(out)
        assert report["schema"] == "repro.result/v1"
        assert report["kind"] == "cluster-report"
        assert report["replicas"] == 2 and report["tp"] == 2
        plan = report["plans"]["sdf"]
        assert len(plan["per_replica"]) == 2
        assert plan["comm_time_s"] > 0
        assert "p99" in plan["ttft_s"]
        assert plan["finished"] + plan["rejected"] == plan["num_requests"]

    def test_cluster_sim_table(self, capsys):
        out = run_cli(capsys, "cluster-sim", "--rate", "2",
                      "--duration", "3", "--plans", "baseline,sdf")
        assert "per replica" in out
        assert "sdf over baseline" in out

    def test_cluster_sim_deterministic(self, capsys):
        argv = ("cluster-sim", "--rate", "2", "--duration", "3",
                "--seed", "7", "--replicas", "2", "--policy",
                "prefix-affinity", "--prefix-groups", "4", "--json")
        assert run_cli(capsys, *argv) == run_cli(capsys, *argv)


class TestCLIHelp:
    def commands(self):
        import argparse

        parser = build_parser()
        subparsers = next(a for a in parser._actions
                          if isinstance(a, argparse._SubParsersAction))
        return list(subparsers.choices)

    def test_every_subcommand_has_help(self, capsys):
        for command in self.commands():
            with pytest.raises(SystemExit) as excinfo:
                main([command, "--help"])
            assert excinfo.value.code == 0
            assert command in capsys.readouterr().out

    def test_every_subcommand_documented(self):
        import repro.cli

        for command in self.commands():
            assert f"``{command}``" in repro.cli.__doc__

    def test_top_level_help(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        assert "serve-sim" in capsys.readouterr().out
