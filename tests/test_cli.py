"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    assert main(list(argv)) == 0
    return capsys.readouterr().out


class TestCLI:
    def test_simulate(self, capsys):
        out = run_cli(capsys, "simulate", "--model", "bert-large",
                      "--seq-len", "1024")
        assert "BERT-large on A100" in out
        assert "softmax share" in out
        assert "legend:" in out

    def test_compare(self, capsys):
        out = run_cli(capsys, "compare", "--model", "bigbird-large",
                      "--seq-len", "2048")
        assert "baseline" in out and "sdf" in out
        assert "speedup" in out

    def test_breakdown(self, capsys):
        out = run_cli(capsys, "breakdown", "--seq-len", "1024")
        for name in ("BERT-large", "GPT-Neo-1.3B", "BigBird-large",
                     "Longformer-large"):
            assert name in out

    def test_libraries(self, capsys):
        out = run_cli(capsys, "libraries", "--seq-len", "1024")
        assert "HuggingFace" in out
        assert "TensorRT" in out

    def test_sweep(self, capsys):
        out = run_cli(capsys, "sweep", "--model", "bert-large",
                      "--values", "1024,2048")
        assert "1024" in out and "2048" in out
        assert out.count("x") >= 2

    def test_sweep_batch_axis(self, capsys):
        out = run_cli(capsys, "sweep", "--model", "longformer-large",
                      "--axis", "batch", "--values", "1,4",
                      "--seq-len", "2048")
        assert "batch" in out

    def test_generate(self, capsys):
        out = run_cli(capsys, "generate", "--tokens", "4",
                      "--seq-len", "512")
        assert "prefill latency" in out
        assert "tokens/s" in out

    def test_trace(self, capsys, tmp_path):
        path = tmp_path / "trace.json"
        out = run_cli(capsys, "trace", "--seq-len", "1024",
                      "--output", str(path))
        assert "kernel slices" in out
        data = json.loads(path.read_text())
        slices = [e for e in data["traceEvents"] if e["ph"] == "X"]
        assert len(slices) == 24 * 14
        assert all("dram_read_bytes" in e["args"] for e in slices)

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_gpu_option(self, capsys):
        out = run_cli(capsys, "simulate", "--gpu", "t4",
                      "--seq-len", "1024")
        assert "on T4" in out

    def test_footprint(self, capsys):
        out = run_cli(capsys, "footprint", "--model", "bert-large",
                      "--seq-len", "2048")
        assert "attention (GB)" in out
        assert "sdf" in out

    def test_roofline(self, capsys):
        out = run_cli(capsys, "roofline", "--seq-len", "1024")
        assert "machine balance" in out
        assert "regime" in out

    def test_verify_quick(self, capsys):
        out = run_cli(capsys, "verify", "--quick")
        assert "4/4" in out
        assert "PASS" in out

    def test_model_json(self, capsys, tmp_path):
        from repro.models import BIGBIRD_LARGE
        from repro.models.serialization import config_to_json

        path = tmp_path / "model.json"
        path.write_text(config_to_json(BIGBIRD_LARGE))
        out = run_cli(capsys, "simulate", "--model-json", str(path),
                      "--seq-len", "2048")
        assert "BigBird-large" in out

    def test_parallel(self, capsys):
        out = run_cli(capsys, "parallel", "--model", "bert-large",
                      "--seq-len", "2048")
        assert "GPUs" in out and "comm share" in out
        assert "8" in out
