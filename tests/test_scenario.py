"""The unified ScenarioSpec API.

One frozen spec describes a simulation scenario for every simulator
and the tuner; these tests pin its construction paths (argparse
namespace, dict round-trip), its strictness (unknown fields and
foreign schemas are typed errors, not silent drops), and its
equivalence to the direct simulator calls it replaced.
"""

import argparse
import dataclasses

import pytest

from repro.common.errors import ScenarioError
from repro.common.scenario import (
    SCENARIO_SCHEMA,
    ArrivalSpec,
    ScenarioSpec,
    ShardingSpec,
    WorkloadSpec,
    add_sharding_args,
    add_workload_args,
    scenario_from_args,
)


def parse(argv, *, sharding=False):
    parser = argparse.ArgumentParser()
    add_workload_args(parser)
    if sharding:
        add_sharding_args(parser)
    return parser.parse_args(argv)


class TestConstruction:
    def test_defaults_match_cli_defaults(self):
        spec = scenario_from_args(parse([], sharding=True))
        assert spec == ScenarioSpec()

    def test_from_args_reads_flags(self):
        spec = scenario_from_args(parse(
            ["--model", "gpt-neo-1.3b", "--gpu", "T4", "--rate", "2",
             "--duration", "5", "--seed", "3", "--arrival", "mmpp",
             "--plans", "baseline, sd ,sdf", "--chunk-tokens", "256",
             "--tp", "2", "--policy", "prefix-affinity"],
            sharding=True))
        assert spec.model == "gpt-neo-1.3b"
        assert spec.gpu == "T4"
        assert spec.workload.rate == 2.0
        assert spec.workload.duration == 5.0
        assert spec.workload.seed == 3
        assert spec.workload.chunk_tokens == 256
        assert spec.arrival.kind == "mmpp"
        assert spec.plans == ("baseline", "sd", "sdf")
        assert spec.sharding.tp == 2
        assert spec.sharding.policy == "prefix-affinity"

    def test_from_args_tolerates_missing_attrs(self):
        """serve-sim namespaces carry no sharding flags; the spec falls
        back to the sharding defaults."""
        spec = scenario_from_args(parse([]))
        assert spec.sharding == ShardingSpec()

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            ScenarioSpec().model = "other"


class TestRoundTrip:
    def test_to_dict_from_dict_round_trips(self):
        spec = ScenarioSpec(
            model="bigbird-large", gpu="H100",
            workload=WorkloadSpec(rate=2.0, duration=5.0, seed=9,
                                  chunk_tokens=256, t=32),
            arrival=ArrivalSpec(kind="diurnal", period=10.0),
            sharding=ShardingSpec(replicas=4, tp=2, policy="prefix-affinity"),
            plans=("sd", "sdf"),
        )
        document = spec.to_dict()
        assert document["schema"] == SCENARIO_SCHEMA
        assert ScenarioSpec.from_dict(document) == spec

    def test_round_trip_survives_json(self):
        import json

        spec = ScenarioSpec()
        rebuilt = ScenarioSpec.from_dict(json.loads(
            json.dumps(spec.to_dict())))
        assert rebuilt == spec

    def test_unknown_top_level_field_rejected(self):
        document = ScenarioSpec().to_dict()
        document["surprise"] = 1
        with pytest.raises(ScenarioError, match="surprise"):
            ScenarioSpec.from_dict(document)

    def test_unknown_nested_field_rejected(self):
        document = ScenarioSpec().to_dict()
        document["workload"]["warp_factor"] = 9
        with pytest.raises(ScenarioError, match="warp_factor"):
            ScenarioSpec.from_dict(document)

    def test_foreign_schema_rejected(self):
        document = ScenarioSpec().to_dict()
        document["schema"] = "repro.scenario/v999"
        with pytest.raises(ScenarioError, match="schema"):
            ScenarioSpec.from_dict(document)

    def test_non_mapping_rejected(self):
        with pytest.raises(ScenarioError):
            ScenarioSpec.from_dict([1, 2, 3])


class TestResolution:
    def test_make_arrival_default_is_none(self):
        """kind=None keeps the legacy Poisson stream (and byte-identical
        reports); the spec must not invent an arrival object."""
        assert ScenarioSpec().make_arrival() is None

    def test_make_arrival_mmpp(self):
        spec = ScenarioSpec(arrival=ArrivalSpec(kind="mmpp"))
        assert spec.make_arrival().kind == "mmpp"

    def test_unknown_interconnect_is_typed_error(self):
        spec = ScenarioSpec(
            sharding=ShardingSpec(interconnect="carrier-pigeon"))
        with pytest.raises(ScenarioError, match="carrier-pigeon"):
            spec.interconnect_spec()

    def test_run_serving_matches_direct_call(self):
        from repro.serving import simulate_serving

        spec = ScenarioSpec(workload=WorkloadSpec(rate=2.0, duration=3.0))
        via_spec = spec.run_serving()
        direct = simulate_serving("bert-large", "A100", rate=2.0,
                                  duration=3.0, seed=0,
                                  plans=("baseline", "sdf"))
        assert via_spec.to_dict() == direct.to_dict()

    def test_run_cluster_matches_direct_call(self):
        from repro.cluster import simulate_cluster

        spec = ScenarioSpec(workload=WorkloadSpec(rate=2.0, duration=3.0))
        via_spec = spec.run_cluster()
        direct = simulate_cluster("bert-large", "A100", rate=2.0,
                                  duration=3.0, seed=0,
                                  plans=("baseline", "sdf"))
        assert via_spec.to_dict() == direct.to_dict()


class TestTunedPlanApplication:
    def make_artifact(self, tmp_path, **winner):
        from repro.tune import save_tuned_plan, tune

        spec = ScenarioSpec(workload=WorkloadSpec(rate=2.0, duration=3.0))
        result = tune(spec, objective="ttft_p99", budget=4, seed=0)
        plan = result.to_tuned_plan()
        if winner:
            plan = dataclasses.replace(
                plan, winner_config={**plan.winner_config, **winner})
        path = tmp_path / "plan.json"
        save_tuned_plan(plan, path)
        return path

    def test_resolved_pins_plan_and_knobs(self, tmp_path):
        path = self.make_artifact(
            tmp_path, plan="sd", t=32, chunk_tokens=256, max_batch=8)
        spec = ScenarioSpec(plan_file=str(path))
        resolved = spec.resolved()
        assert resolved.plans == ("sd",)
        assert resolved.plan_file is None
        assert resolved.workload.t == 32
        assert resolved.workload.chunk_tokens == 256
        assert resolved.workload.max_batch == 8

    def test_resolved_without_plan_file_is_identity(self):
        spec = ScenarioSpec()
        assert spec.resolved() is spec
