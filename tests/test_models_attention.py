"""Integration tests: the SDA block produces identical attention output
under every execution plan, dense and sparse."""

import numpy as np
import pytest

from repro.common import PlanError, ShapeError
from repro.gpu import Device
from repro.kernels.softmax import safe_softmax
from repro.models import AttentionKind, AttentionSpec, SDABlock

ALL_PLANS = ["baseline", "sd", "sdf", "sdf-ls-only", "sdf-gs-only"]


def make_qkv(batch_heads, seq_len, d_head, seed=0):
    rng = np.random.default_rng(seed)
    return tuple(
        rng.standard_normal((batch_heads, seq_len, d_head)).astype(np.float32)
        for _ in range(3)
    )


def dense_reference(q, k, v, causal=False):
    d = q.shape[-1]
    scores = np.matmul(q, np.swapaxes(k, 1, 2), dtype=np.float32) / np.sqrt(d)
    if causal:
        L = q.shape[1]
        scores = scores + np.where(
            np.arange(L)[None, :] > np.arange(L)[:, None], -np.inf, 0.0
        )
    return np.matmul(safe_softmax(scores), v, dtype=np.float32)


class TestDensePlans:
    SPEC = AttentionSpec(kind=AttentionKind.DENSE)

    @pytest.mark.parametrize("plan", ALL_PLANS + ["online"])
    def test_all_plans_match_reference(self, plan):
        q, k, v = make_qkv(4, 128, 32, seed=1)
        block = SDABlock(batch=2, num_heads=2, seq_len=128, d_head=32,
                         spec=self.SPEC, plan=plan, t=32)
        out = block.forward(q, k, v)
        np.testing.assert_allclose(
            out, dense_reference(q, k, v), atol=5e-3, rtol=5e-3
        )

    @pytest.mark.parametrize("plan", ALL_PLANS)
    def test_plans_agree_pairwise(self, plan):
        q, k, v = make_qkv(4, 64, 16, seed=2)
        kwargs = dict(batch=2, num_heads=2, seq_len=64, d_head=16,
                      spec=self.SPEC, t=16)
        baseline = SDABlock(plan="baseline", **kwargs).forward(q, k, v)
        other = SDABlock(plan=plan, **kwargs).forward(q, k, v)
        np.testing.assert_allclose(other, baseline, atol=5e-3)

    def test_causal_masking(self):
        q, k, v = make_qkv(2, 32, 8, seed=3)
        spec = AttentionSpec(kind=AttentionKind.DENSE_CAUSAL)
        for plan in ("baseline", "sdf"):
            block = SDABlock(batch=1, num_heads=2, seq_len=32, d_head=8,
                             spec=spec, plan=plan, t=8)
            out = block.forward(q, k, v)
            np.testing.assert_allclose(
                out, dense_reference(q, k, v, causal=True), atol=5e-3
            )

    def test_causal_first_token_sees_only_itself(self):
        q, k, v = make_qkv(2, 16, 8, seed=4)
        spec = AttentionSpec(kind=AttentionKind.DENSE_CAUSAL)
        block = SDABlock(batch=1, num_heads=2, seq_len=16, d_head=8,
                         spec=spec, plan="baseline")
        out = block.forward(q, k, v)
        np.testing.assert_allclose(out[:, 0], np.float16(v[:, 0]), atol=1e-3)

    def test_shape_validation(self):
        block = SDABlock(batch=1, num_heads=2, seq_len=32, d_head=8,
                         spec=self.SPEC)
        q, k, v = make_qkv(2, 32, 8)
        with pytest.raises(ShapeError):
            block.forward(q[:, :16], k, v)

    def test_kernel_counts_per_plan(self):
        kwargs = dict(batch=1, num_heads=2, seq_len=64, d_head=16,
                      spec=self.SPEC, t=16)
        assert len(SDABlock(plan="baseline", **kwargs).kernels) == 3
        assert len(SDABlock(plan="sd", **kwargs).kernels) == 5
        assert len(SDABlock(plan="sdf", **kwargs).kernels) == 3
        assert len(SDABlock(plan="sdf-ls-only", **kwargs).kernels) == 4


class TestSparsePlans:
    SPEC = AttentionSpec(kind=AttentionKind.BIGBIRD, block_size=16,
                         window_blocks=3, random_blocks=2, global_blocks=1)

    @pytest.mark.parametrize("plan", ALL_PLANS)
    def test_sparse_plans_agree(self, plan):
        q, k, v = make_qkv(4, 256, 16, seed=5)
        kwargs = dict(batch=2, num_heads=2, seq_len=256, d_head=16,
                      spec=self.SPEC, t=16)
        baseline = SDABlock(plan="baseline", **kwargs).forward(q, k, v)
        other = SDABlock(plan=plan, **kwargs).forward(q, k, v)
        np.testing.assert_allclose(other, baseline, atol=5e-3)

    def test_sparse_matches_masked_dense(self):
        q, k, v = make_qkv(2, 128, 16, seed=6)
        spec = AttentionSpec(kind=AttentionKind.LONGFORMER, block_size=16,
                             window=32, global_blocks=1)
        block = SDABlock(batch=1, num_heads=2, seq_len=128, d_head=16,
                         spec=spec, plan="sdf", t=16)
        out = block.forward(q, k, v)

        layout = spec.layout(128)
        scores = np.matmul(q, np.swapaxes(k, 1, 2), dtype=np.float32) / 4.0
        scores = np.where(layout.element_mask(), scores, -np.inf)
        expected = np.matmul(safe_softmax(scores), v, dtype=np.float32)
        np.testing.assert_allclose(out, expected, atol=5e-3)

    def test_local_causal_gpt_neo_layer(self):
        q, k, v = make_qkv(2, 128, 16, seed=7)
        spec = AttentionSpec(kind=AttentionKind.LOCAL_CAUSAL, block_size=16,
                             window=64)
        kwargs = dict(batch=1, num_heads=2, seq_len=128, d_head=16,
                      spec=spec, t=16)
        baseline = SDABlock(plan="baseline", **kwargs).forward(q, k, v)
        sdf = SDABlock(plan="sdf", **kwargs).forward(q, k, v)
        np.testing.assert_allclose(sdf, baseline, atol=5e-3)

        # Causality: output at position i is independent of future tokens.
        v2 = v.copy()
        v2[:, -1] += 100.0
        out2 = SDABlock(plan="baseline", **kwargs).forward(q, k, v2)
        np.testing.assert_array_equal(baseline[:, 0], out2[:, 0])

    def test_online_plan_rejected_for_sparse(self):
        with pytest.raises(PlanError):
            SDABlock(batch=1, num_heads=1, seq_len=256, d_head=16,
                     spec=self.SPEC, plan="online")


class TestSimulation:
    def test_simulate_records_kernels(self):
        device = Device("A100")
        block = SDABlock(batch=1, num_heads=16, seq_len=4096, d_head=64,
                         spec=AttentionSpec(kind=AttentionKind.DENSE),
                         plan="sdf")
        block.simulate(device)
        assert len(device.profile) == 3

    def test_sdf_cuts_dense_sda_traffic_in_half(self):
        """Fig. 6 at the SDA-block level."""
        spec = AttentionSpec(kind=AttentionKind.DENSE)
        kwargs = dict(batch=1, num_heads=16, seq_len=4096, d_head=64,
                      spec=spec)
        traffic = {}
        for plan in ("baseline", "sdf"):
            device = Device("A100")
            SDABlock(plan=plan, **kwargs).simulate(device)
            traffic[plan] = device.profile.total_dram_bytes()
        assert traffic["sdf"] < 0.6 * traffic["baseline"]

    def test_sd_increases_dense_traffic(self):
        """SD alone adds sweeps (4 -> 6): more traffic than baseline."""
        spec = AttentionSpec(kind=AttentionKind.DENSE)
        kwargs = dict(batch=1, num_heads=16, seq_len=4096, d_head=64,
                      spec=spec)
        traffic = {}
        for plan in ("baseline", "sd"):
            device = Device("A100")
            SDABlock(plan=plan, **kwargs).simulate(device)
            traffic[plan] = device.profile.total_dram_bytes()
        assert traffic["sd"] > 1.3 * traffic["baseline"]
