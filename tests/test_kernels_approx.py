"""Tests for the approximate softmax kernel family.

Three layers of checks: the numerics of each approximation against the
float64 exact reference (with the declared error-profile budgets as
the bound), the cost-model pricing (each kernel must actually be
cheaper than its exact counterpart where the design says so), and the
oracle hooks (profiles declared for both dtypes, registry wiring).
"""

import numpy as np
import pytest

from repro.common import DType
from repro.common.errors import ConfigError, ShapeError
from repro.gpu.costmodel import time_kernel
from repro.gpu.specs import get_gpu
from repro.kernels.approx import (
    ApproxRowSoftmaxKernel,
    BAPSSoftmaxKernel,
    FlashDAttentionKernel,
    baseline_softmax_counters,
    flash_softmax_counters,
    lut_exp,
    lut_exp_table,
    verification_oracles,
)
from repro.kernels.flash import TILE_KV, FlashAttentionKernel
from repro.kernels.softmax import RowSoftmaxKernel
from repro.verify.profiles import measure_error_profile
from repro.verify.refs import exact_attention, exact_softmax

A100 = get_gpu("A100")


def scores(rows, length, seed=0, scale=3.0):
    rng = np.random.default_rng(seed)
    return (rng.standard_normal((1, rows, length)) * scale).astype(
        np.float32
    )


class TestLutExp:
    def test_tracks_exp_within_table_resolution(self):
        rng = np.random.default_rng(7)
        z = -20.0 * rng.random(4096).astype(np.float32)
        approx = lut_exp(z, table_bits=8, degree=1)
        rel = np.abs(approx - np.exp(z.astype(np.float64))) / np.exp(
            z.astype(np.float64)
        )
        # First-order interpolation: error ~ (ln2/2)*(2^-bits)^2/4.
        assert float(rel.max()) < 2.0 ** (-2 * 8)

    def test_degree_one_beats_degree_zero(self):
        rng = np.random.default_rng(8)
        z = -10.0 * rng.random(4096).astype(np.float32)
        exact = np.exp(z.astype(np.float64))
        err0 = np.abs(lut_exp(z, degree=0) - exact).max()
        err1 = np.abs(lut_exp(z, degree=1) - exact).max()
        assert err1 < err0 / 16

    def test_more_bits_help(self):
        rng = np.random.default_rng(9)
        z = -5.0 * rng.random(1024).astype(np.float32)
        exact = np.exp(z.astype(np.float64))
        err4 = np.abs(lut_exp(z, table_bits=4) - exact).max()
        err10 = np.abs(lut_exp(z, table_bits=10) - exact).max()
        assert err10 < err4 / 100

    def test_masked_inputs_are_exact_zero(self):
        z = np.array([0.0, -np.inf, -1.0], dtype=np.float32)
        out = lut_exp(z)
        assert out[1] == 0.0
        assert out[0] == pytest.approx(1.0, rel=1e-3)

    def test_extreme_negatives_underflow_cleanly(self):
        z = np.array([-1e4, -3e4], dtype=np.float32)
        out = lut_exp(z)
        assert np.all(np.isfinite(out))
        assert np.all(out == 0.0)

    def test_table_shapes(self):
        assert lut_exp_table(6, 0).shape == (64,)
        assert lut_exp_table(6, 1)[0] == 1.0


class TestApproxRowSoftmax:
    def test_within_declared_fp32_budget(self):
        x = scores(64, 512, seed=1)
        kernel = ApproxRowSoftmaxKernel(64, 512, dtype=DType.FP32)
        profile = measure_error_profile(
            kernel.compute(x), exact_softmax(x), DType.FP32
        )
        # The registry's declared fp32 budget.
        assert profile.mean_rel_err < 2e-6
        assert profile.max_row_kl < 1e-6

    def test_rows_sum_to_one(self):
        x = scores(32, 300, seed=2)
        kernel = ApproxRowSoftmaxKernel(32, 300, dtype=DType.FP32)
        sums = kernel.compute(x).sum(axis=-1)
        np.testing.assert_allclose(sums, 1.0, atol=1e-5)

    def test_masked_row_contract(self):
        x = scores(4, 64, seed=3)
        x[0, 0, :] = -np.inf
        x[0, 1, ::2] = -np.inf
        out = ApproxRowSoftmaxKernel(4, 64, dtype=DType.FP16).compute(x)
        assert np.all(out[0, 0] == 0.0)
        assert np.all(out[0, 1, ::2] == 0.0)
        assert out[0, 1].sum() == pytest.approx(1.0, abs=2e-3)

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            ApproxRowSoftmaxKernel(4, 64, table_bits=17)
        with pytest.raises(ConfigError):
            ApproxRowSoftmaxKernel(4, 64, degree=2)
        with pytest.raises(ShapeError):
            ApproxRowSoftmaxKernel(4, 64).compute(scores(4, 32, seed=4))

    def test_launch_carries_table_and_fewer_flops(self):
        kernel = ApproxRowSoftmaxKernel(1024, 2048, table_bits=10)
        base = RowSoftmaxKernel(1024, 2048)
        launch = kernel.launch_spec(A100)
        assert launch.tb.shared_mem == 2048 * 4 + kernel.table_bytes
        assert launch.cuda_flops < base.launch_spec(A100).cuda_flops
        assert launch.issue_fraction > base.launch_spec(A100).issue_fraction

    def test_strictly_faster_than_baseline(self):
        for length in (512, 1024, 4096):
            rows = 16 * length
            lut = ApproxRowSoftmaxKernel(rows, length)
            base = RowSoftmaxKernel(rows, length)
            t_lut = time_kernel(A100, lut.launch_spec(A100)).time
            t_base = time_kernel(A100, base.launch_spec(A100)).time
            assert t_lut < t_base

    def test_counters(self):
        kernel = ApproxRowSoftmaxKernel(8, 128, degree=1)
        counters = kernel.counters()
        assert counters["exp_ops"] == 0.0
        assert counters["lut_lookups"] == 8 * 128
        assert counters["div_ops"] == 8.0
        base = baseline_softmax_counters(8, 128, DType.FP16)
        assert base["div_ops"] == 8 * 128
        assert counters["dram_bytes"] == base["dram_bytes"]


class TestBAPSSoftmax:
    def test_within_declared_fp16_budget(self):
        x = scores(64, 512, seed=5)
        kernel = BAPSSoftmaxKernel(64, 512, dtype=DType.FP16)
        profile = measure_error_profile(
            kernel.compute(x), exact_softmax(DType.FP16.quantize(x)),
            DType.FP16,
        )
        assert profile.max_abs_err < 4e-3
        assert profile.max_row_kl < 1e-2

    def test_rows_sum_to_one_within_fp16_accumulation(self):
        x = scores(32, 1024, seed=6)
        out = BAPSSoftmaxKernel(32, 1024, dtype=DType.FP32).compute(x)
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, atol=4e-3)

    def test_ragged_tail_padding(self):
        """Row lengths not divisible by the block size still work."""
        x = scores(8, 100, seed=7)
        kernel = BAPSSoftmaxKernel(8, 100, block_size=32,
                                   dtype=DType.FP32)
        out = kernel.compute(x)
        assert out.shape == x.shape
        assert kernel.num_blocks == 4
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, atol=4e-3)

    def test_fp16_accumulation_is_real(self):
        """The block sums genuinely round to fp16: a random row picks
        up visible (but budgeted) error over the exact fp64 softmax."""
        x = scores(1, 2048, seed=20, scale=1.0)
        out = BAPSSoftmaxKernel(1, 2048, dtype=DType.FP32).compute(x)
        err = np.abs(out - exact_softmax(x)).max()
        assert 0 < err < 4e-3

    def test_masked_rows_and_blocks(self):
        x = scores(4, 128, seed=8)
        x[0, 0, :] = -np.inf          # fully masked row
        x[0, 1, :64] = -np.inf        # two fully masked blocks
        out = BAPSSoftmaxKernel(4, 128, block_size=32,
                                dtype=DType.FP32).compute(x)
        assert np.all(out[0, 0] == 0.0)
        assert np.all(out[0, 1, :64] == 0.0)
        assert out[0, 1].sum() == pytest.approx(1.0, abs=4e-3)

    def test_halved_row_staging(self):
        baps = BAPSSoftmaxKernel(1024, 4096)
        base = RowSoftmaxKernel(1024, 4096)
        assert (baps.launch_spec(A100).tb.shared_mem
                < base.launch_spec(A100).tb.shared_mem)

    def test_counters(self):
        counters = BAPSSoftmaxKernel(8, 128, block_size=32).counters()
        assert counters["fp16_accumulations"] == 8 * 128
        assert counters["exp_ops"] == 8 * 128 + 8 * 4
        assert counters["div_ops"] == 8.0


class TestFlashD:
    def test_matches_stock_flash(self):
        rng = np.random.default_rng(10)
        q, k, v = (rng.standard_normal((2, 300, 16)).astype(np.float32)
                   for _ in range(3))
        stock = FlashAttentionKernel(2, 300, 16, scale=0.25,
                                     dtype=DType.FP32)
        flashd = FlashDAttentionKernel(2, 300, 16, scale=0.25,
                                       dtype=DType.FP32)
        np.testing.assert_allclose(
            flashd.compute(q, k, v), stock.compute(q, k, v), atol=1e-5
        )

    def test_within_declared_fp16_budget(self):
        rng = np.random.default_rng(11)
        q, k, v = (rng.standard_normal((2, 256, 64)).astype(np.float32)
                   for _ in range(3))
        kernel = FlashDAttentionKernel(2, 256, 64, scale=0.125,
                                       dtype=DType.FP16)
        expected, _, _ = exact_attention(q, k, v, DType.FP16, scale=0.125)
        profile = measure_error_profile(
            kernel.compute(q, k, v), expected, DType.FP16, row_kl=False
        )
        assert profile.max_abs_err < 8e-3
        assert profile.mean_rel_err < 1e-3

    def test_causal(self):
        rng = np.random.default_rng(12)
        length = 2 * TILE_KV
        q, k, v = (rng.standard_normal((2, length, 8)).astype(np.float32)
                   for _ in range(3))
        out = FlashDAttentionKernel(2, length, 8, scale=1.0, causal=True,
                                    dtype=DType.FP32).compute(q, k, v)
        np.testing.assert_allclose(out[:, 0], v[:, 0], atol=1e-5)
        v2 = v.copy()
        v2[:, -1] += 100
        out2 = FlashDAttentionKernel(2, length, 8, scale=1.0, causal=True,
                                     dtype=DType.FP32).compute(q, k, v2)
        np.testing.assert_array_equal(out[:, 0], out2[:, 0])

    def test_division_slots_returned(self):
        flashd = FlashDAttentionKernel(16, 2048, 64)
        stock = FlashAttentionKernel(16, 2048, 64)
        assert (flashd.launch_spec(A100).cuda_flops
                < stock.launch_spec(A100).cuda_flops)
        assert (time_kernel(A100, flashd.launch_spec(A100)).time
                <= time_kernel(A100, stock.launch_spec(A100)).time)

    def test_counters_fewer_divisions(self):
        flashd = FlashDAttentionKernel(16, 2048, 64).counters()
        stock = flash_softmax_counters(16, 2048, 64, DType.FP16)
        assert flashd["div_ops"] < stock["div_ops"]
        assert stock["div_ops"] == 16 * 2048 * 64


class TestOracles:
    def test_hook_shape(self):
        oracles = verification_oracles()
        assert [o.name for o in oracles] == [
            "softmax.lut_kernel",
            "softmax.baps_kernel",
            "attention.flashd_vs_exact",
        ]
        for oracle in oracles:
            assert oracle.profiles is not None
            assert set(oracle.profiles) == {DType.FP16, DType.FP32}
            assert "approx" in oracle.tags

    def test_contract_derived_from_profile(self):
        oracle = verification_oracles()[0]
        contract = oracle.contract_for(DType.FP32)
        profile = oracle.profile_for(DType.FP32)
        assert contract.atol == profile.max_abs_err
        assert contract.max_ulp == profile.max_ulp

    def test_registered_in_default_registry(self):
        from repro.verify.oracles import default_registry

        names = default_registry().names()
        assert "softmax.lut_kernel" in names
        assert "softmax.baps_kernel" in names
        assert "attention.flashd_vs_exact" in names

    def test_fuzz_smoke_measures_profiles(self):
        from repro.verify.fuzz import fuzz_family

        report = fuzz_family("softmax", cases=20, seed=123)
        assert report.ok, report.render()
        assert "softmax.lut_kernel" in report.profiles
        assert "softmax.baps_kernel" in report.profiles
        lut = report.profiles["softmax.lut_kernel"]
        assert lut["cases"] > 0
        assert lut["max_abs_err"] >= 0.0
        assert "profiles" in report.to_dict()
