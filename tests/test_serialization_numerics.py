"""Tests for model JSON serialisation and the fp16 fidelity analysis."""

import pytest

from repro.common import ConfigError
from repro.models import (
    AttentionKind,
    BERT_LARGE,
    BIGBIRD_LARGE,
    GPT_NEO_1_3B,
)
from repro.models.serialization import (
    config_from_json,
    config_to_json,
    load_config,
)


class TestSerialization:
    @pytest.mark.parametrize("config", [BERT_LARGE, GPT_NEO_1_3B,
                                        BIGBIRD_LARGE])
    def test_roundtrip(self, config):
        restored = config_from_json(config_to_json(config))
        assert restored == config

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "model.json"
        path.write_text(config_to_json(BIGBIRD_LARGE))
        assert load_config(str(path)) == BIGBIRD_LARGE

    def test_custom_model_runs(self):
        text = """
        {"name": "custom", "num_layers": 2, "d_model": 128,
         "num_heads": 4, "d_ff": 256,
         "attention": [{"kind": "dense"}]}
        """
        config = config_from_json(text)
        from repro.models import InferenceSession

        result = InferenceSession(config, seq_len=512).simulate()
        assert result.total_time > 0

    def test_missing_fields(self):
        with pytest.raises(ConfigError, match="missing fields"):
            config_from_json('{"name": "x"}')

    def test_bad_kind(self):
        with pytest.raises(ConfigError, match="kind"):
            config_from_json(
                '{"name": "x", "num_layers": 1, "d_model": 64,'
                ' "num_heads": 4, "d_ff": 128,'
                ' "attention": [{"kind": "flash"}]}'
            )

    def test_unknown_spec_field(self):
        with pytest.raises(ConfigError, match="unknown attention-spec"):
            config_from_json(
                '{"name": "x", "num_layers": 1, "d_model": 64,'
                ' "num_heads": 4, "d_ff": 128,'
                ' "attention": [{"kind": "dense", "sparsity": 0.5}]}'
            )

    def test_invalid_json(self):
        with pytest.raises(ConfigError, match="invalid model JSON"):
            config_from_json("{not json")

    def test_sparse_kind_roundtrip(self):
        spec = BIGBIRD_LARGE.attention[0]
        restored = config_from_json(config_to_json(BIGBIRD_LARGE)) \
            .attention[0]
        assert restored.kind is AttentionKind.BIGBIRD
        assert restored.random_blocks == spec.random_blocks


class TestNumericsFidelity:
    def test_decomposition_adds_no_fp16_error(self):
        from repro.analysis.numerics import softmax_fidelity

        stats = softmax_fidelity(rows=32, length=1024, t=64)
        mono = stats["monolithic"]
        deco = stats["decomposed"]
        # Both schedules round at fp16 resolution...
        assert mono.max_abs_error < 1e-3
        assert deco.max_abs_error < 1e-3
        # ...and decomposition is not meaningfully worse.
        assert deco.max_abs_error < 3 * mono.max_abs_error
        assert deco.mean_abs_error < 3 * mono.mean_abs_error

    def test_rows_normalised(self):
        from repro.analysis.numerics import softmax_fidelity

        stats = softmax_fidelity(rows=16, length=512, t=32)
        assert stats["decomposed"].max_row_sum_error < 5e-3

    def test_scale_sensitivity(self):
        """Larger logit magnitudes worsen fp16 error for both
        schedules alike."""
        from repro.analysis.numerics import softmax_fidelity

        small = softmax_fidelity(rows=16, length=512, scale=1.0)
        large = softmax_fidelity(rows=16, length=512, scale=10.0)
        assert (large["decomposed"].max_abs_error
                >= small["decomposed"].max_abs_error * 0.5)
