"""Tests for the synthetic TriviaQA workload."""

import numpy as np
import pytest

from repro.common import ConfigError
from repro.workloads import SyntheticTriviaQA, embed_tokens


class TestDataset:
    def test_deterministic(self):
        a = SyntheticTriviaQA(num_documents=16, seed=3)
        b = SyntheticTriviaQA(num_documents=16, seed=3)
        np.testing.assert_array_equal(a.lengths(), b.lengths())
        doc_a = next(a.documents(max_length=512))
        doc_b = next(b.documents(max_length=512))
        np.testing.assert_array_equal(doc_a.tokens, doc_b.tokens)

    def test_long_document_regime(self):
        """Mean length is thousands of tokens: a 512-token model
        truncates most documents (the Section 2.2 motivation)."""
        data = SyntheticTriviaQA(num_documents=512, seed=0)
        assert 2_000 < data.mean_length() < 12_000
        assert data.truncation_rate(512) > 0.9
        assert data.truncation_rate(4096) < data.truncation_rate(512)

    def test_truncation_to_first_tokens(self):
        data = SyntheticTriviaQA(num_documents=8, seed=1)
        long_docs = {d.original_length: d.tokens
                     for d in data.documents(max_length=100_000)}
        for doc in data.documents(max_length=64):
            assert len(doc) <= 64
            np.testing.assert_array_equal(
                doc.tokens, long_docs[doc.original_length][: len(doc)]
            )

    def test_token_ids_in_vocab(self):
        data = SyntheticTriviaQA(num_documents=4, vocab_size=1000, seed=2)
        for doc in data.documents(max_length=256):
            assert doc.tokens.min() >= 0
            assert doc.tokens.max() < 1000

    def test_batches_shape(self):
        data = SyntheticTriviaQA(num_documents=10, seed=0)
        batches = list(data.batches(batch_size=4, seq_len=128))
        assert len(batches) == 2  # 10 docs -> 2 full batches of 4
        for batch in batches:
            assert batch.shape == (4, 128)

    def test_validation(self):
        with pytest.raises(ConfigError):
            SyntheticTriviaQA(num_documents=0)
        data = SyntheticTriviaQA(num_documents=4)
        with pytest.raises(ConfigError):
            data.truncation_rate(0)


class TestEmbedding:
    def test_shape_and_determinism(self):
        tokens = np.array([[1, 2, 3], [3, 2, 1]])
        a = embed_tokens(tokens, d_model=16, seed=0)
        b = embed_tokens(tokens, d_model=16, seed=0)
        assert a.shape == (2, 3, 16)
        np.testing.assert_array_equal(a, b)

    def test_same_token_same_vector(self):
        tokens = np.array([[5, 5, 7]])
        out = embed_tokens(tokens, d_model=8)
        np.testing.assert_array_equal(out[0, 0], out[0, 1])
        assert not np.array_equal(out[0, 0], out[0, 2])

    def test_rejects_bad_shape(self):
        with pytest.raises(ConfigError):
            embed_tokens(np.zeros(4, dtype=np.int64), d_model=8)

    def test_feeds_inference_session(self):
        """End-to-end: tokens -> embeddings -> tiny model forward."""
        from repro.models import AttentionKind, AttentionSpec, \
            InferenceSession, ModelConfig

        config = ModelConfig(
            name="tiny", num_layers=1, d_model=32, num_heads=2, d_ff=64,
            attention=(AttentionSpec(kind=AttentionKind.DENSE),),
        )
        data = SyntheticTriviaQA(num_documents=2, seed=0)
        batch = next(data.batches(batch_size=2, seq_len=64))
        hidden = embed_tokens(batch, d_model=32)
        out = InferenceSession(config, seq_len=64, batch=2,
                               t=16).forward(hidden)
        assert out.shape == (2, 64, 32)
        assert np.all(np.isfinite(out))


class TestGenomics:
    def test_long_context_regime(self):
        from repro.workloads import SyntheticGenomics

        data = SyntheticGenomics(num_sequences=64, seed=0)
        # Tens of thousands of tokens: even a 4096-token model truncates
        # most sequences (BigBird's genomics motivation).
        assert data.mean_length() > 10_000
        assert data.truncation_rate(4096) > 0.9

    def test_kmer_tokens_overlap(self):
        from repro.workloads import SyntheticGenomics
        from repro.workloads.genomics import KMER

        data = SyntheticGenomics(num_sequences=2, seed=1)
        doc = next(data.documents(max_length=128))
        assert doc.tokens.max() < 4 ** KMER
        # Consecutive k-mers share k-1 bases: token[i+1]'s low digits
        # equal token[i]'s high digits.
        t = doc.tokens
        assert ((t[1:] % 4 ** (KMER - 1)) == (t[:-1] // 4)).all()

    def test_deterministic(self):
        from repro.workloads import SyntheticGenomics
        import numpy as np

        a = next(SyntheticGenomics(4, seed=5).documents(64))
        b = next(SyntheticGenomics(4, seed=5).documents(64))
        np.testing.assert_array_equal(a.tokens, b.tokens)

    def test_feeds_dataset_benchmark(self):
        from repro.workloads import SyntheticGenomics
        from repro.workloads.driver import DatasetBenchmark

        data = SyntheticGenomics(num_sequences=8, seed=0)
        report = DatasetBenchmark(data, "bigbird-large", max_seq_len=4096,
                                  bucket=1024).run()
        assert report.num_documents == 8
