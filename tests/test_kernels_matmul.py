"""Tests for the tiled MatMul kernel: numerics and traffic accounting."""

import numpy as np
import pytest

from repro.common import DType, ShapeError
from repro.gpu import A100, T4
from repro.kernels import MatMulKernel
from repro.kernels.matmul import attention_score_matmul, attention_value_matmul


def rng():
    return np.random.default_rng(7)


class TestNumerics:
    def test_matches_numpy_fp32(self):
        r = rng()
        a = r.standard_normal((2, 16, 8)).astype(np.float32)
        b = r.standard_normal((2, 8, 12)).astype(np.float32)
        kernel = MatMulKernel(batch=2, m=16, n=12, k=8, dtype=DType.FP32)
        np.testing.assert_allclose(
            kernel.compute(a, b), np.matmul(a, b), rtol=1e-6
        )

    def test_fp16_storage_rounds_operands(self):
        r = rng()
        a = r.standard_normal((1, 4, 4)).astype(np.float64)
        b = r.standard_normal((1, 4, 4)).astype(np.float64)
        kernel = MatMulKernel(batch=1, m=4, n=4, k=4, dtype=DType.FP16)
        expected = np.float16(
            np.matmul(np.float16(a).astype(np.float32),
                      np.float16(b).astype(np.float32))
        ).astype(np.float32)
        np.testing.assert_array_equal(kernel.compute(a, b), expected)

    def test_shared_weight_operand(self):
        r = rng()
        a = r.standard_normal((3, 5, 4)).astype(np.float32)
        w = r.standard_normal((4, 6)).astype(np.float32)
        kernel = MatMulKernel(batch=3, m=5, n=6, k=4, b_shared=True,
                              dtype=DType.FP32)
        np.testing.assert_allclose(kernel.compute(a, w), a @ w, rtol=1e-6)

    def test_epilogue_applied(self):
        a = np.ones((1, 2, 2), dtype=np.float32)
        b = np.ones((1, 2, 2), dtype=np.float32)
        kernel = MatMulKernel(batch=1, m=2, n=2, k=2, dtype=DType.FP32,
                              epilogue=lambda x: x * 0.5)
        np.testing.assert_allclose(kernel.compute(a, b), np.ones((1, 2, 2)))

    def test_rejects_wrong_shapes(self):
        kernel = MatMulKernel(batch=1, m=4, n=4, k=4)
        with pytest.raises(ShapeError):
            kernel.compute(np.zeros((1, 4, 5)), np.zeros((1, 4, 4)))
        with pytest.raises(ShapeError):
            kernel.compute(np.zeros((1, 4, 4)), np.zeros((1, 5, 4)))


class TestCost:
    def test_flops(self):
        kernel = MatMulKernel(batch=4, m=128, n=256, k=64)
        assert kernel.flops() == 2 * 4 * 128 * 256 * 64

    def test_grid_one_tb_per_tile(self):
        kernel = MatMulKernel(batch=2, m=256, n=384, k=64,
                              tile_m=128, tile_n=128)
        assert kernel.grid == 2 * 2 * 3

    def test_small_operands_read_once(self):
        """Operands below half L2 stream from DRAM exactly once."""
        kernel = MatMulKernel(batch=1, m=1024, n=1024, k=64, dtype=DType.FP16)
        launch = kernel.launch_spec(A100)
        expected_reads = (1024 * 64 + 64 * 1024) * 2
        assert launch.dram_read_bytes == expected_reads

    def test_output_written_once(self):
        kernel = MatMulKernel(batch=1, m=1024, n=1024, k=64, dtype=DType.FP16)
        launch = kernel.launch_spec(A100)
        assert launch.dram_write_bytes == 1024 * 1024 * 2

    def test_large_operand_rereads_on_small_l2(self):
        """An operand that exceeds L2 is re-read once per crossing tile wave."""
        # Each operand is 2048 x 2048 fp16 = 8 MiB: resident in A100's
        # 40 MB L2, not in T4's 4 MB.
        kernel = MatMulKernel(batch=1, m=2048, n=2048, k=2048,
                              dtype=DType.FP16, tile_m=128, tile_n=128)
        reads_a100 = kernel.launch_spec(A100).dram_read_bytes
        reads_t4 = kernel.launch_spec(T4).dram_read_bytes
        assert reads_a100 == 2 * 2048 * 2048 * 2
        assert reads_t4 == 16 * reads_a100  # 2048/128 crossings each

    def test_shared_operand_counted_once_across_batch(self):
        shared = MatMulKernel(batch=8, m=512, n=512, k=512, b_shared=True,
                              dtype=DType.FP16)
        unshared = MatMulKernel(batch=8, m=512, n=512, k=512,
                                dtype=DType.FP16)
        assert (shared.launch_spec(A100).dram_read_bytes
                < unshared.launch_spec(A100).dram_read_bytes)

    def test_attention_matmul_memory_bound_at_long_seq(self):
        """Q.K^T at L=4096 is memory bound on A100 (intensity ~62 < 108)."""
        from repro.gpu.costmodel import time_kernel

        kernel = attention_score_matmul(batch_heads=16, seq_len=4096, d_head=64)
        timing = time_kernel(A100, kernel.launch_spec(A100))
        assert timing.bound == "memory"

    def test_fc_matmul_compute_bound(self):
        """A D_m x D_m FC projection at L=4096 is compute bound on A100."""
        from repro.gpu.costmodel import time_kernel

        kernel = MatMulKernel(batch=1, m=4096, n=1024, k=1024, b_shared=True)
        timing = time_kernel(A100, kernel.launch_spec(A100))
        assert timing.bound == "compute"

    def test_av_matmul_writes_small_output(self):
        kernel = attention_value_matmul(batch_heads=16, seq_len=4096, d_head=64)
        launch = kernel.launch_spec(A100)
        assert launch.dram_write_bytes == 16 * 4096 * 64 * 2
        # It must *read* the big attention matrix once.
        assert launch.dram_read_bytes >= 16 * 4096 * 4096 * 2
