"""The observability layer: tracer semantics, exporters, and the
determinism/overhead guarantees the serving simulators rely on."""

import json

import pytest

from repro.common.errors import TraceError
from repro.gpu import simcache
from repro.obs import (
    NULL_TRACER,
    Tracer,
    chrome_events,
    chrome_trace_dict,
    current_tracer,
    to_chrome_trace,
    tracing,
    validate_nesting,
)
from repro.obs.metrics import MetricsRegistry, NULL_METRICS
from repro.serving.simulator import simulate_serving


@pytest.fixture(autouse=True)
def _fresh_caches():
    """Trace content depends on cache hit/miss flags; start cold."""
    simcache.invalidate()
    yield
    simcache.invalidate()


def _traced_serving(**overrides):
    kwargs = dict(rate=3.0, duration=2.0, seed=0)
    kwargs.update(overrides)
    simcache.invalidate()
    tracer = Tracer()
    with tracing(tracer):
        report = simulate_serving("bert-large", "a100", **kwargs)
    return tracer, report


class TestTracer:
    def test_track_ids_are_first_use_ordered(self):
        tracer = Tracer()
        assert tracer.track("alpha") == (1, 0)
        assert tracer.track("beta") == (2, 0)
        assert tracer.track("alpha", "other") == (1, 1)
        assert tracer.track("alpha") == (1, 0)
        assert tracer.processes == {"alpha": 1, "beta": 2}
        assert tracer.thread_names[(1, 1)] == "other"

    def test_negative_duration_rejected(self):
        tracer = Tracer()
        with pytest.raises(TraceError):
            tracer.complete("bad", "test", ts=0.0, dur=-1.0)

    def test_span_brackets_the_clock(self):
        tracer = Tracer()
        tracer.set_clock(2.0)
        with tracer.span("work", "test"):
            tracer.advance(0.5)
        (event,) = tracer.events
        assert (event.ts, event.dur) == (2.0, 0.5)

    def test_push_lays_spans_back_to_back(self):
        tracer = Tracer()
        assert tracer.push("a", "k", 1.0, pid=1) == 0.0
        assert tracer.push("b", "k", 2.0, pid=1) == 1.0
        assert tracer.push("c", "k", 1.0, pid=2) == 0.0

    def test_instant_defaults_to_clock(self):
        tracer = Tracer()
        tracer.set_clock(3.5)
        tracer.instant("evt", "test")
        assert tracer.events[0].ts == 3.5

    def test_summary_slices_by_checkpoint(self):
        tracer = Tracer()
        tracer.complete("a", "x", ts=0.0, dur=1.0)
        mark = tracer.event_count
        tracer.complete("b", "y", ts=1.0, dur=2.0)
        sliced = tracer.summary(since=mark, include_metrics=False)
        assert sliced["spans"] == 1
        assert list(sliced["span_categories"]) == ["y"]

    def test_null_tracer_is_inert(self):
        NULL_TRACER.complete("a", "x", ts=0.0, dur=1.0)
        NULL_TRACER.instant("b", "x")
        with NULL_TRACER.span("c", "x"):
            pass
        assert not NULL_TRACER.enabled
        assert NULL_TRACER.events == ()
        assert NULL_TRACER.summary()["events"] == 0
        assert NULL_TRACER.metrics is NULL_METRICS

    def test_tracing_installs_and_restores(self):
        assert current_tracer() is NULL_TRACER
        outer = Tracer()
        with tracing(outer):
            assert current_tracer() is outer
            with tracing() as inner:
                assert current_tracer() is inner
                assert inner is not outer
            assert current_tracer() is outer
        assert current_tracer() is NULL_TRACER


class TestMetricsRegistry:
    def test_counter_and_gauge(self):
        registry = MetricsRegistry()
        registry.counter("n").inc()
        registry.counter("n").add(2.5)
        gauge = registry.gauge("g")
        gauge.set(3.0)
        gauge.set(1.0)
        snap = registry.snapshot()
        assert snap["counters"]["n"] == 3.5
        assert snap["gauges"]["g"] == {
            "last": 1.0, "min": 1.0, "max": 3.0, "samples": 2}

    def test_snapshot_is_name_sorted(self):
        registry = MetricsRegistry()
        for name in ("zeta", "alpha", "mid"):
            registry.counter(name).inc()
        assert list(registry.snapshot()["counters"]) == [
            "alpha", "mid", "zeta"]

    def test_null_registry_absorbs_everything(self):
        NULL_METRICS.counter("x").inc(100)
        NULL_METRICS.gauge("y").set(5)
        assert NULL_METRICS.snapshot() == {"counters": {}, "gauges": {}}


class TestChromeExport:
    def test_metadata_and_units(self):
        tracer = Tracer()
        pid, tid = tracer.track("engine", "steps")
        tracer.complete("work", "test", ts=1.0, dur=0.25, pid=pid, tid=tid)
        doc = chrome_trace_dict(tracer)
        assert doc["displayTimeUnit"] == "ms"
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": "engine"}} in meta
        (span,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert span["ts"] == pytest.approx(1.0e6)
        assert span["dur"] == pytest.approx(0.25e6)

    def test_validate_nesting_accepts_proper_trees(self):
        events = [
            {"ph": "X", "name": "outer", "pid": 1, "tid": 0,
             "ts": 0.0, "dur": 10.0},
            {"ph": "X", "name": "inner", "pid": 1, "tid": 0,
             "ts": 2.0, "dur": 3.0},
            {"ph": "X", "name": "sibling", "pid": 1, "tid": 0,
             "ts": 6.0, "dur": 4.0},
        ]
        assert validate_nesting(events) == []

    def test_validate_nesting_flags_partial_overlap(self):
        events = [
            {"ph": "X", "name": "a", "pid": 1, "tid": 0,
             "ts": 0.0, "dur": 5.0},
            {"ph": "X", "name": "b", "pid": 1, "tid": 0,
             "ts": 3.0, "dur": 5.0},
        ]
        (problem,) = validate_nesting(events)
        assert "'b'" in problem

    def test_lanes_are_independent(self):
        events = [
            {"ph": "X", "name": "a", "pid": 1, "tid": 0,
             "ts": 0.0, "dur": 5.0},
            {"ph": "X", "name": "b", "pid": 2, "tid": 0,
             "ts": 3.0, "dur": 5.0},
        ]
        assert validate_nesting(events) == []


class TestTracedServing:
    def test_golden_trace_is_deterministic(self):
        """Fixed seed => byte-identical Chrome trace JSON."""
        first, _ = _traced_serving()
        second, _ = _traced_serving()
        assert to_chrome_trace(first) == to_chrome_trace(second)

    def test_trace_spans_nest(self):
        tracer, _ = _traced_serving()
        assert validate_nesting(chrome_events(tracer)) == []

    def test_phase_spans_reconcile_with_slo_metrics(self):
        """queued + prefill == TTFT and decode/(n-1) == TPOT, per
        request, to float tolerance — the trace *is* the report."""
        tracer, report = _traced_serving()
        lanes = {}
        for event in tracer.events:
            if event.cat in ("request", "request-phase"):
                lanes.setdefault((event.pid, event.tid), {})[
                    event.name] = event
        checked = 0
        for phases in lanes.values():
            outer = next(e for n, e in phases.items()
                         if n.startswith("request "))
            request_id = int(outer.name.split()[1])
            if "decode" not in phases:
                continue
            ttft = phases["queued"].dur + phases["prefill"].dur
            decode = phases["decode"]
            tokens = decode.args["tokens"]
            tpot = decode.dur / (tokens - 1) if tokens > 1 else 0.0
            e2e = outer.dur
            # Find the matching request in either plan's stream via the
            # aggregate check below instead; here check internal
            # consistency of the span tree.
            assert ttft + decode.dur == pytest.approx(e2e)
            assert tpot >= 0.0
            checked += 1
        assert checked > 0

    def test_phase_durations_sum_to_reported_aggregates(self):
        """Mean TTFT/TPOT recomputed from span durations match the
        report's LatencyStats to float tolerance."""
        tracer, report = _traced_serving()
        for plan, plan_report in report.plans.items():
            process = f"{plan}:requests"
            pid = tracer.processes[process]
            ttfts, tpots = [], []
            spans = {}
            for event in tracer.events:
                if event.pid == pid and event.ph == "X":
                    spans.setdefault(event.tid, {})[event.name] = event
            for phases in spans.values():
                if "decode" not in phases:
                    continue
                ttfts.append(phases["queued"].dur + phases["prefill"].dur)
                tokens = phases["decode"].args["tokens"]
                tpots.append(phases["decode"].dur / (tokens - 1)
                             if tokens > 1 else 0.0)
            assert len(ttfts) == plan_report.finished
            mean_ttft = sum(ttfts) / len(ttfts)
            mean_tpot = sum(tpots) / len(tpots)
            assert mean_ttft == pytest.approx(plan_report.ttft.mean)
            assert mean_tpot == pytest.approx(plan_report.tpot.mean)

    def test_trace_summary_attached_per_plan(self):
        _, report = _traced_serving()
        for plan_report in report.plans.values():
            summary = plan_report.trace_summary
            assert summary is not None
            assert summary["spans"] > 0
            assert "engine-step" in summary["span_categories"]
            assert "metrics" not in summary  # per-plan slices skip them
        assert "metrics" in report.trace_summary

    def test_untraced_results_are_bit_identical(self):
        """Tracing off => serialized reports match a traced run's
        numbers and carry no trace fields."""
        simcache.invalidate()
        untraced = simulate_serving("bert-large", "a100",
                                    rate=3.0, duration=2.0, seed=0)
        _, traced = _traced_serving()
        assert untraced.trace_summary is None
        untraced_doc = untraced.to_dict()
        assert "trace_summary" not in untraced_doc
        for plan_doc in untraced_doc["plans"].values():
            assert "trace_summary" not in plan_doc

        def strip(doc):
            return {
                key: (strip(value) if isinstance(value, dict) else value)
                for key, value in doc.items()
                if key != "trace_summary"
            }

        assert json.dumps(untraced_doc, sort_keys=True) == json.dumps(
            strip(traced.to_dict()), sort_keys=True)

    def test_untraced_run_records_nothing(self):
        simulate_serving("bert-large", "a100", rate=3.0, duration=2.0,
                         seed=0)
        assert current_tracer() is NULL_TRACER
        assert NULL_TRACER.events == ()


class TestTracedCluster:
    def test_cluster_trace_nests_and_summarizes(self):
        from repro.cluster.router import simulate_cluster

        simcache.invalidate()
        tracer = Tracer()
        with tracing(tracer):
            report = simulate_cluster("bert-large", "a100", rate=4.0,
                                      duration=2.0, seed=0, replicas=2)
        assert validate_nesting(chrome_events(tracer)) == []
        for plan, plan_report in report.plans.items():
            assert plan_report.trace_summary["spans"] > 0
            assert f"{plan}:router" in tracer.processes
        counters = report.trace_summary["metrics"]["counters"]
        routed = sum(value for name, value in counters.items()
                     if ":router.to_replica" in name)
        assert routed == 2 * report.num_requests  # both plans

    def test_first_admitted_time_survives_preemption(self):
        """After a preemption, admitted_time moves but
        first_admitted_time keeps the original queueing boundary."""
        import dataclasses

        from repro.common.dtypes import DType
        from repro.gpu.specs import get_gpu
        from repro.models.config import get_model
        from repro.models.footprint import weight_bytes
        from repro.serving.requests import Request
        from repro.serving.simulator import ServingSimulator

        # An A100 variant whose HBM holds the weights plus ~40 KV
        # blocks — small enough to force preemption.
        model = get_model("bert-large")
        bytes_per_token = 2 * model.num_layers * model.d_model * 2
        pool = 40 * 64 * bytes_per_token
        weights = weight_bytes(model, DType.FP16)
        gpu = dataclasses.replace(
            get_gpu("a100"), hbm_bytes=int((pool + weights) / 0.9) + 1)
        requests = [
            Request(request_id=i, arrival_time=0.0,
                    prompt_len=512, output_len=96)
            for i in range(5)
        ]
        sim = ServingSimulator("bert-large", gpu, plan="sdf",
                               requests=requests, max_batch=8)
        tracer = Tracer()
        with tracing(tracer):
            report = sim.run()
        assert report.preemption_events > 0
        preempted = [e for e in tracer.events if e.name == "preempt"]
        assert preempted
        assert validate_nesting(chrome_events(tracer)) == []
        # TTFT still reconciles from the spans: the queued phase ends
        # at the *first* admission even though admitted_time moved.
        lanes = {}
        for event in tracer.events:
            if event.ph == "X" and event.cat == "request-phase":
                lanes.setdefault((event.pid, event.tid), {})[
                    event.name] = event
        ttfts = [phases["queued"].dur + phases["prefill"].dur
                 for phases in lanes.values() if "prefill" in phases]
        assert len(ttfts) == report.finished
        assert sum(ttfts) / len(ttfts) == pytest.approx(report.ttft.mean)
