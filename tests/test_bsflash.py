"""Tests for block-sparse FlashAttention."""

import numpy as np
import pytest

from repro.common import DType
from repro.gpu import A100
from repro.models import (
    AttentionKind,
    AttentionSpec,
    InferenceSession,
    SDABlock,
)
from repro.sparse import bigbird_layout, sliding_window_layout
from repro.sparse.bsflash import BlockSparseFlashAttentionKernel


def make_qkv(bh, length, d, seed=0):
    rng = np.random.default_rng(seed)
    return tuple(rng.standard_normal((bh, length, d)).astype(np.float32)
                 for _ in range(3))


class TestNumerics:
    def test_matches_masked_dense(self):
        layout = sliding_window_layout(128, 16, window_blocks=3)
        q, k, v = make_qkv(4, 128, 16)
        kernel = BlockSparseFlashAttentionKernel(layout, 4, 16, scale=0.25,
                                                 dtype=DType.FP32)
        from repro.kernels.softmax import safe_softmax

        scores = np.matmul(q, np.swapaxes(k, 1, 2),
                           dtype=np.float32) * 0.25
        scores = np.where(layout.element_mask(), scores, -np.inf)
        expected = np.matmul(safe_softmax(scores), v, dtype=np.float32)
        np.testing.assert_allclose(kernel.compute(q, k, v), expected,
                                   atol=1e-4)

    @pytest.mark.parametrize("kind,kwargs", [
        (AttentionKind.BIGBIRD, dict(window_blocks=3, random_blocks=2,
                                     global_blocks=1)),
        (AttentionKind.LONGFORMER, dict(window=64, global_blocks=1)),
        (AttentionKind.LOCAL_CAUSAL, dict(window=64)),
    ])
    def test_plan_agrees_with_baseline(self, kind, kwargs):
        spec = AttentionSpec(kind=kind, block_size=16, **kwargs)
        q, k, v = make_qkv(4, 256, 16, seed=kind.value.__hash__() % 100)
        kw = dict(batch=2, num_heads=2, seq_len=256, d_head=16, spec=spec)
        flash = SDABlock(plan="flash", **kw).forward(q, k, v)
        base = SDABlock(plan="baseline", **kw).forward(q, k, v)
        np.testing.assert_allclose(flash, base, atol=5e-3)


class TestCost:
    def test_zero_attention_traffic(self):
        layout = bigbird_layout(4096, 64)
        kernel = BlockSparseFlashAttentionKernel(layout, 16, 64)
        launch = kernel.launch_spec(A100)
        assert launch.dram_bytes == 4 * 16 * 4096 * 64 * 2

    def test_flops_scale_with_nnz(self):
        sparse = bigbird_layout(4096, 64)
        kernel = BlockSparseFlashAttentionKernel(sparse, 16, 64)
        launch = kernel.launch_spec(A100)
        assert launch.tensor_flops == 4.0 * 16 * sparse.nnz_elements() * 64

    def test_load_imbalance_carried(self):
        layout = bigbird_layout(4096, 64)
        kernel = BlockSparseFlashAttentionKernel(layout, 16, 64)
        launch = kernel.launch_spec(A100)
        assert launch.shape.max_work == layout.max_row_nnz


class TestEndToEnd:
    @pytest.mark.parametrize("model", ["gpt-neo-1.3b", "bigbird-large",
                                       "longformer-large"])
    def test_flash_beats_sdf_on_sparse_models(self, model):
        base = InferenceSession(model, plan="baseline").simulate()
        sdf = InferenceSession(model, plan="sdf").simulate()
        flash = InferenceSession(model, plan="flash").simulate()
        assert flash.total_time < sdf.total_time < base.total_time

    def test_flash_moves_least_data(self):
        base = InferenceSession("bigbird-large", plan="baseline").simulate()
        flash = InferenceSession("bigbird-large", plan="flash").simulate()
        assert flash.total_dram_bytes < 0.9 * base.total_dram_bytes
