"""Tests for the interconnect model and tensor-parallel inference."""

import pytest

from repro.common import ConfigError
from repro.gpu.interconnect import NVLINK3, PCIE4, allreduce_time
from repro.models import BERT_LARGE, InferenceSession
from repro.models.parallel import TensorParallelSession


class TestAllReduce:
    def test_single_gpu_free(self):
        assert allreduce_time(NVLINK3, 1e9, 1) == 0.0

    def test_zero_bytes_free(self):
        assert allreduce_time(NVLINK3, 0, 8) == 0.0

    def test_ring_volume(self):
        """2 (n-1)/n of the buffer per GPU."""
        t2 = allreduce_time(NVLINK3, 1e9, 2)
        expected = (2 * 0.5 * 1e9) / NVLINK3.link_bandwidth \
            + 2 * NVLINK3.hop_latency
        assert t2 == pytest.approx(expected)

    def test_more_gpus_more_volume(self):
        assert allreduce_time(NVLINK3, 1e9, 8) > allreduce_time(NVLINK3, 1e9, 2)

    def test_pcie_slower(self):
        assert allreduce_time(PCIE4, 1e8, 4) > allreduce_time(NVLINK3, 1e8, 4)

    def test_invalid_n(self):
        with pytest.raises(ConfigError):
            allreduce_time(NVLINK3, 1e9, 0)


class TestTensorParallel:
    def test_scaling_reduces_latency(self):
        single = InferenceSession(BERT_LARGE, plan="baseline").simulate()
        tp2 = TensorParallelSession(BERT_LARGE, n_gpus=2).simulate()
        tp4 = TensorParallelSession(BERT_LARGE, n_gpus=4).simulate()
        assert tp2.total_time < single.total_time
        assert tp4.total_time < tp2.total_time
        # Sub-linear: communication and un-sharded work cap the gain.
        assert tp4.total_time > single.total_time / 4.5

    def test_comm_share_grows_with_gpus(self):
        tp2 = TensorParallelSession(BERT_LARGE, n_gpus=2).simulate()
        tp8 = TensorParallelSession(BERT_LARGE, n_gpus=8).simulate()
        assert tp8.comm_fraction > tp2.comm_fraction
        assert 0 < tp2.comm_fraction < 0.5

    def test_recomposition_survives_tp(self):
        """Each shard runs the same SDA pipeline over H/n heads."""
        base = TensorParallelSession(BERT_LARGE, n_gpus=4,
                                     plan="baseline").simulate()
        sdf = TensorParallelSession(BERT_LARGE, n_gpus=4,
                                    plan="sdf").simulate()
        speedup = base.total_time / sdf.total_time
        assert speedup > 1.12

    def test_pcie_hurts(self):
        from repro.gpu.interconnect import PCIE4

        nvlink = TensorParallelSession(BERT_LARGE, n_gpus=4).simulate()
        pcie = TensorParallelSession(BERT_LARGE, n_gpus=4,
                                     interconnect=PCIE4).simulate()
        assert pcie.total_time > nvlink.total_time
        assert pcie.comm_fraction > 2 * nvlink.comm_fraction

    def test_indivisible_heads_rejected(self):
        with pytest.raises(ConfigError, match="heads"):
            TensorParallelSession(BERT_LARGE, n_gpus=3)

    def test_two_allreduces_per_layer(self):
        tp = TensorParallelSession(BERT_LARGE, n_gpus=2).simulate()
        comm_records = [r for r in tp.result.profile
                        if r.category == "comm"]
        assert len(comm_records) == 2 * BERT_LARGE.num_layers


class TestPipelineParallel:
    from repro.models.parallel import PipelineParallelSession

    def make(self, **kw):
        from repro.models.parallel import PipelineParallelSession

        defaults = dict(n_stages=4, microbatches=4, batch=4, seq_len=2048)
        defaults.update(kw)
        return PipelineParallelSession(BERT_LARGE, **defaults)

    def test_bubble_fraction(self):
        result = self.make(n_stages=4, microbatches=4).simulate()
        assert result.bubble_fraction == pytest.approx(3 / 7)
        assert result.throughput_efficiency == pytest.approx(4 / 7)

    def test_more_microbatches_shrink_bubble(self):
        few = self.make(microbatches=2, batch=4).simulate()
        many = self.make(microbatches=4, batch=4).simulate()
        assert many.bubble_fraction < few.bubble_fraction

    def test_single_stage_no_bubble(self):
        result = self.make(n_stages=1, microbatches=1, batch=4).simulate()
        assert result.bubble_fraction == 0.0

    def test_layers_must_split(self):
        from repro.common import ConfigError

        with pytest.raises(ConfigError, match="layers"):
            self.make(n_stages=5)

    def test_batch_must_split(self):
        from repro.common import ConfigError

        with pytest.raises(ConfigError, match="microbatches"):
            self.make(microbatches=3, batch=4)

    def test_pipelining_beats_sequential_throughput(self):
        """4 stages with 8 microbatches finish the batch faster than
        one GPU running it alone (but slower than 4x)."""
        single = InferenceSession(BERT_LARGE, seq_len=2048,
                                  batch=8).simulate()
        piped = self.make(n_stages=4, microbatches=8, batch=8).simulate()
        assert piped.total_time < single.total_time
        assert piped.total_time > single.total_time / 4

    def test_recomposition_composes_with_pipelining(self):
        base = self.make(plan="baseline").simulate()
        sdf = self.make(plan="sdf").simulate()
        assert sdf.total_time < base.total_time
