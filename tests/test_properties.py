"""Property-based tests (hypothesis) for the core invariants.

Covers the occupancy calculator, the cost model, the block-sparse
round trip, and the mathematical identities the recomposition relies
on — across randomly drawn shapes and magnitudes.
"""

import numpy as np
from hypothesis import assume, given, settings, strategies as st

from repro.common import DType
from repro.gpu import A100, RTX3090, T4, TBResources, compute_occupancy
from repro.gpu.costmodel import KernelLaunch, WorkloadShape, time_kernel
from repro.kernels import MatMulKernel
from repro.kernels.softmax import safe_softmax
from repro.core import decomposed_softmax, online_softmax, softmax_backward
from repro.sparse import BlockSparseLayout, BlockSparseMatrix

GPUS = (A100, RTX3090, T4)

threads_strategy = st.sampled_from([32, 64, 128, 256, 512, 1024])
smem_strategy = st.integers(0, 64) .map(lambda k: k * 1024)


class TestOccupancyProperties:
    @given(threads=threads_strategy, smem=smem_strategy,
           gpu=st.sampled_from(range(3)))
    @settings(max_examples=120, deadline=None)
    def test_occupancy_within_device_limits(self, threads, smem, gpu):
        spec = GPUS[gpu]
        try:
            occ = compute_occupancy(spec, TBResources(threads=threads,
                                                      shared_mem=smem))
        except Exception:
            assume(False)
        assert 1 <= occ.tbs_per_sm <= spec.max_tbs_per_sm
        assert occ.warps_per_sm <= spec.max_warps_per_sm
        assert occ.tbs_per_sm * threads <= spec.max_threads_per_sm
        if smem:
            assert occ.tbs_per_sm * smem <= spec.max_shared_mem_per_sm
        assert 0 < occ.fraction <= 1.0

    @given(threads=threads_strategy, gpu=st.sampled_from(range(3)))
    @settings(max_examples=60, deadline=None)
    def test_more_registers_never_increase_occupancy(self, threads, gpu):
        spec = GPUS[gpu]
        low = compute_occupancy(
            spec, TBResources(threads=threads, registers_per_thread=32))
        high = compute_occupancy(
            spec, TBResources(threads=threads, registers_per_thread=64))
        assert high.tbs_per_sm <= low.tbs_per_sm


class TestCostModelProperties:
    def make_launch(self, read, write, tensor, grid):
        return KernelLaunch(
            name="p", category="x",
            tb=TBResources(threads=256),
            shape=WorkloadShape(grid=grid),
            dram_read_bytes=read, dram_write_bytes=write,
            tensor_flops=tensor,
        )

    @given(
        read=st.floats(1e3, 1e10),
        write=st.floats(0, 1e10),
        tensor=st.floats(0, 1e13),
        grid=st.integers(1, 10**6),
        gpu=st.sampled_from(range(3)),
    )
    @settings(max_examples=150, deadline=None)
    def test_timing_invariants(self, read, write, tensor, grid, gpu):
        spec = GPUS[gpu]
        timing = time_kernel(spec, self.make_launch(read, write, tensor, grid))
        assert timing.time >= spec.kernel_launch_overhead
        assert timing.time >= max(timing.compute_time, timing.memory_time)
        assert 0 <= timing.bandwidth_utilization <= spec.streaming_efficiency
        assert timing.imbalance_penalty >= 1.0

    @given(
        bytes1=st.floats(1e6, 1e9),
        scale=st.floats(1.5, 10.0),
        gpu=st.sampled_from(range(3)),
    )
    @settings(max_examples=60, deadline=None)
    def test_time_monotone_in_traffic(self, bytes1, scale, gpu):
        spec = GPUS[gpu]
        small = time_kernel(spec, self.make_launch(bytes1, 0, 0, 10_000))
        large = time_kernel(spec, self.make_launch(bytes1 * scale, 0, 0,
                                                   10_000))
        assert large.time >= small.time

    @given(flops=st.floats(1e9, 1e13), gpu=st.sampled_from(range(3)))
    @settings(max_examples=60, deadline=None)
    def test_compute_time_never_beats_ideal(self, flops, gpu):
        spec = GPUS[gpu]
        timing = time_kernel(spec, self.make_launch(1e3, 0, flops, 10_000))
        ideal = flops / spec.fp16_tensor_flops
        assert timing.compute_time >= ideal


class TestMatMulProperties:
    @given(
        m=st.integers(1, 512), n=st.integers(1, 512), k=st.integers(1, 256),
        batch=st.integers(1, 8),
    )
    @settings(max_examples=60, deadline=None)
    def test_traffic_at_least_operand_sizes(self, m, n, k, batch):
        kernel = MatMulKernel(batch=batch, m=m, n=n, k=k, dtype=DType.FP16)
        launch = kernel.launch_spec(A100)
        assert launch.dram_read_bytes >= batch * (m * k + k * n) * 2
        assert launch.dram_write_bytes == batch * m * n * 2
        assert launch.tensor_flops == 2 * batch * m * n * k

    @given(m=st.integers(2, 40), n=st.integers(2, 40), k=st.integers(2, 40),
           seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_numerics_match_numpy(self, m, n, k, seed):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((1, m, k)).astype(np.float32)
        b = rng.standard_normal((1, k, n)).astype(np.float32)
        kernel = MatMulKernel(batch=1, m=m, n=n, k=k, dtype=DType.FP32)
        np.testing.assert_allclose(kernel.compute(a, b), a @ b,
                                   rtol=1e-5, atol=1e-5)


class TestBlockSparseProperties:
    @given(
        n=st.integers(2, 10),
        bs=st.sampled_from([4, 8, 16]),
        density_seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip(self, n, bs, density_seed):
        rng = np.random.default_rng(density_seed)
        mask = rng.random((n, n)) < 0.5
        mask[0, 0] = True  # ensure non-empty
        layout = BlockSparseLayout(mask, bs)
        data = rng.standard_normal(
            (2, layout.nnz_blocks, bs, bs)).astype(np.float32)
        matrix = BlockSparseMatrix(layout, data)
        back = BlockSparseMatrix.from_dense(matrix.to_dense(), layout)
        np.testing.assert_array_equal(back.data, data)

    @given(n=st.integers(2, 10), seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_statistics_consistent(self, n, seed):
        rng = np.random.default_rng(seed)
        mask = rng.random((n, n)) < 0.4
        mask[0, 0] = True
        layout = BlockSparseLayout(mask, 8)
        assert layout.nnz_blocks == layout.row_nnz_blocks().sum()
        assert layout.max_row_nnz >= layout.mean_row_nnz
        assert 0 < layout.density <= 1


class TestMathProperties:
    @given(
        length=st.sampled_from([8, 16, 32, 64]),
        t=st.sampled_from([1, 2, 4, 8]),
        seed=st.integers(0, 2**31 - 1),
        shift=st.floats(-100, 100),
    )
    @settings(max_examples=80, deadline=None)
    def test_decomposition_shift_invariant(self, length, t, seed, shift):
        x = np.random.default_rng(seed).standard_normal(
            (3, length)).astype(np.float32)
        a = decomposed_softmax(x, t)
        b = decomposed_softmax(x + np.float32(shift), t)
        np.testing.assert_allclose(a, b, atol=1e-4)

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_three_softmaxes_agree(self, seed):
        x = np.random.default_rng(seed).standard_normal(
            (2, 32)).astype(np.float32) * 10
        reference = safe_softmax(x)
        np.testing.assert_allclose(decomposed_softmax(x, 8), reference,
                                   atol=1e-5)
        np.testing.assert_allclose(online_softmax(x), reference, atol=1e-5)

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_backward_rows_sum_to_zero(self, seed):
        rng = np.random.default_rng(seed)
        y = safe_softmax(rng.standard_normal((4, 16)).astype(np.float32))
        g = softmax_backward(y, rng.standard_normal((4, 16)).astype(np.float32))
        np.testing.assert_allclose(g.sum(axis=-1), 0.0, atol=1e-5)


class TestFlashProperties:
    """FlashAttention's tiled recurrence equals reference softmax
    attention for arbitrary shapes, scales, and tile boundaries."""

    @given(
        length=st.integers(4, 200),
        d=st.sampled_from([4, 8, 16]),
        scale=st.floats(0.05, 3.0),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_flash_matches_reference(self, length, d, scale, seed):
        from repro.kernels.flash import FlashAttentionKernel

        rng = np.random.default_rng(seed)
        q, k, v = (rng.standard_normal((2, length, d)).astype(np.float32)
                   for _ in range(3))
        kernel = FlashAttentionKernel(2, length, d, scale=scale,
                                      dtype=DType.FP32)
        scores = np.matmul(q, np.swapaxes(k, 1, 2),
                           dtype=np.float32) * np.float32(scale)
        expected = np.matmul(safe_softmax(scores), v, dtype=np.float32)
        np.testing.assert_allclose(kernel.compute(q, k, v), expected,
                                   rtol=1e-4, atol=1e-4)

    @given(length=st.sampled_from([32, 96, 160]),
           seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_flash_causal_matches_reference(self, length, seed):
        from repro.kernels.flash import FlashAttentionKernel

        rng = np.random.default_rng(seed)
        q, k, v = (rng.standard_normal((1, length, 8)).astype(np.float32)
                   for _ in range(3))
        kernel = FlashAttentionKernel(1, length, 8, scale=1.0, causal=True,
                                      dtype=DType.FP32)
        scores = np.matmul(q, np.swapaxes(k, 1, 2), dtype=np.float32)
        mask = np.triu(np.full((length, length), -np.inf, dtype=np.float32),
                       k=1)
        expected = np.matmul(safe_softmax(scores + mask), v,
                             dtype=np.float32)
        np.testing.assert_allclose(kernel.compute(q, k, v), expected,
                                   rtol=1e-4, atol=1e-4)


class TestPatternProperties:
    @given(
        n=st.sampled_from([8, 16, 32]),
        window=st.sampled_from([1, 3, 5]),
    )
    @settings(max_examples=20, deadline=None)
    def test_window_contains_diagonal(self, n, window):
        from repro.sparse import sliding_window_layout

        layout = sliding_window_layout(n * 16, 16, window_blocks=window)
        assert all(layout.mask[i, i] for i in range(n))

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_bigbird_superset_of_window_and_global(self, seed):
        from repro.sparse import bigbird_layout, sliding_window_layout

        layout = bigbird_layout(1024, 64, seed=seed)
        window = sliding_window_layout(1024, 64, window_blocks=3)
        assert (layout.mask | window.mask == layout.mask).all()
        assert layout.mask[0].all() and layout.mask[:, 0].all()


class TestInvariantLayerProperties:
    """Route arbitrary rectangular and batched shapes through the same
    metamorphic invariant layer the differential fuzz harness uses
    (``repro.verify.invariants``), instead of hand-rolling per-test
    tolerance checks."""

    @given(
        batch=st.integers(1, 4),
        rows=st.integers(1, 6),
        length=st.sampled_from([1, 2, 7, 33, 128]),
        scale=st.sampled_from([1.0, 10.0, 100.0]),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_safe_softmax_invariants_batched(self, batch, rows, length,
                                             scale, seed):
        from repro.verify.contracts import FP32_MATH
        from repro.verify.invariants import check_softmax_function

        rng = np.random.default_rng(seed)
        x = rng.standard_normal((batch, rows, length)).astype(np.float32)
        x *= np.float32(scale)
        if length > 1:  # mask a few positions, plus one whole row
            x[rng.random(x.shape) < 0.2] = -np.inf
            x[0, 0, :] = -np.inf
        violations = check_softmax_function(safe_softmax, x, FP32_MATH,
                                            case_seed=seed)
        assert violations == [], "; ".join(v.describe() for v in violations)

    @given(
        t=st.sampled_from([1, 2, 4, 8]),
        n_sv=st.integers(1, 6),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_recomposed_softmaxes_satisfy_invariants(self, t, n_sv, seed):
        from repro.verify.contracts import FP32_MATH
        from repro.verify.invariants import check_softmax_function

        rng = np.random.default_rng(seed)
        x = rng.standard_normal((2, 3, t * n_sv)).astype(np.float32) * 5
        for fn in (online_softmax, lambda a: decomposed_softmax(a, t)):
            violations = check_softmax_function(fn, x, FP32_MATH,
                                                case_seed=seed)
            assert violations == [], \
                "; ".join(v.describe() for v in violations)

    @given(
        l_q=st.integers(1, 24),
        l_k=st.integers(1, 48),
        d=st.sampled_from([4, 16]),
        causal=st.booleans(),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_rectangular_attention_invariants(self, l_q, l_k, d, causal,
                                              seed):
        from repro.verify.cases import Case
        from repro.verify.contracts import FP32_ATTENTION
        from repro.verify.invariants import check_invariants
        from repro.verify.refs import dense_attention

        rng = np.random.default_rng(seed)
        q = rng.standard_normal((2, l_q, d)).astype(np.float32)
        k = rng.standard_normal((2, l_k, d)).astype(np.float32)
        v = rng.standard_normal((2, l_k, d)).astype(np.float32)
        mask = rng.random((l_q, l_k)) < 0.8
        mask[0, :] = False  # one fully masked query row
        out, scores, probs = dense_attention(
            q, k, v, DType.FP32, scale=1.0 / np.sqrt(d), mask=mask,
            causal=causal,
        )
        case = Case("attention", {"case_seed": seed, "dtype": "fp32"})
        violations = check_invariants(
            ("row_sum_one", "masked_zeros", "finite_outputs"),
            case, {"actual": out, "probs": probs, "scores": scores},
            FP32_ATTENTION,
        )
        assert violations == [], "; ".join(v.describe() for v in violations)
