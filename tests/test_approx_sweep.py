"""Tests for the accuracy-vs-speed Pareto sweep (``repro approx-sweep``)."""

import json

import numpy as np
import pytest

from repro.analysis.approx_sweep import (
    REGIMES,
    SOFTMAX_VARIANTS,
    measure_flashd_accuracy,
    measure_softmax_accuracy,
    render_sweep,
    run_sweep,
)
from repro.common.dtypes import DType
from repro.common.results import APPROX_SWEEP_SCHEMA
from repro.gpu.specs import get_gpu
from repro.models import get_model

A100 = get_gpu("A100")


def small_sweep(**overrides):
    kwargs = dict(
        gpu=A100,
        models=[get_model("bert-large")],
        seq_lens=(256, 1024),
        cases=2,
        seed=0,
    )
    kwargs.update(overrides)
    return run_sweep(**kwargs)


class TestAccuracyStage:
    def test_regime_coverage(self):
        """The accuracy stage fuzzes across at least 3 numeric regimes."""
        assert len(REGIMES) >= 3

    def test_profiles_measured_for_every_variant(self):
        profiles = measure_softmax_accuracy(
            dtype=DType.FP16, cases=1, seed=0
        )
        assert set(profiles) == set(SOFTMAX_VARIANTS)
        for name, profile in profiles.items():
            assert profile["cases"] == len(REGIMES), name
            assert profile["max_abs_err"] >= 0.0

    def test_baseline_is_most_accurate_softmax(self):
        """At fp32 the exact variants beat the approximations (at fp16
        output rounding hides the difference — also worth asserting)."""
        p32 = measure_softmax_accuracy(dtype=DType.FP32, cases=2, seed=0)
        assert p32["baseline"]["max_abs_err"] <= p32["lut"]["max_abs_err"]
        assert p32["baseline"]["max_abs_err"] <= p32["baps"]["max_abs_err"]
        p16 = measure_softmax_accuracy(dtype=DType.FP16, cases=2, seed=0)
        assert (p16["lut"]["p99_row_err"]
                == pytest.approx(p16["baseline"]["p99_row_err"]))

    def test_flashd_accuracy_deterministic(self):
        a = measure_flashd_accuracy(dtype=DType.FP16, cases=1, seed=3)
        b = measure_flashd_accuracy(dtype=DType.FP16, cases=1, seed=3)
        assert a == b
        assert a["max_row_kl"] is None  # attention output: no KL axis


class TestSweepReport:
    def test_envelope(self):
        report = small_sweep()
        assert report["schema"] == APPROX_SWEEP_SCHEMA
        assert report["kind"] == "approx-sweep"
        assert set(report["variants"]) == {
            "baseline", "sdf", "lut", "baps", "flashd"
        }
        assert report["regimes"] == sorted(REGIMES)
        json.dumps(report)  # must be JSON-serializable as-is

    def test_deterministic(self):
        assert small_sweep() == small_sweep()

    def test_points_cover_the_grid(self):
        report = small_sweep(seq_lens=(256, 512, 1024))
        for name, variant in report["variants"].items():
            assert len(variant["points"]) == 3, name
            for point in variant["points"]:
                assert point["time_s"] > 0
                assert point["baseline_time_s"] > 0

    def test_contracts_satisfied(self):
        """Every approximate variant's measured profile stays inside
        its declared budget — the harness's acceptance criterion."""
        report = small_sweep(cases=3)
        for name in ("lut", "baps", "flashd"):
            variant = report["variants"][name]
            assert variant["contract"] is not None, name
            assert variant["contract_satisfied"] is True, (
                name, variant["accuracy"], variant["contract"]
            )
        for name in ("baseline", "sdf"):
            assert report["variants"][name]["contract"] is None
            assert report["variants"][name]["contract_satisfied"] is None

    def test_pareto_frontier_is_nondominated(self):
        report = small_sweep()
        frontier = report["pareto_frontier"]
        assert frontier
        variants = report["variants"]
        for name in frontier:
            v = variants[name]
            for other in SOFTMAX_VARIANTS:
                if other == name:
                    continue
                o = variants[other]
                strictly_dominates = (
                    o["accuracy"]["p99_row_err"]
                    <= v["accuracy"]["p99_row_err"]
                    and o["mean_speedup"] >= v["mean_speedup"]
                    and (o["accuracy"]["p99_row_err"]
                         < v["accuracy"]["p99_row_err"]
                         or o["mean_speedup"] > v["mean_speedup"])
                )
                assert not strictly_dominates, (name, other)

    def test_render_mentions_every_variant(self):
        report = small_sweep()
        text = render_sweep(report)
        for name in report["variants"]:
            assert name in text
        assert "pareto frontier" in text


@pytest.mark.slow
class TestAcceptance:
    def test_lut_dominates_baseline_across_paper_grid(self):
        """The headline claim: at least one approximate variant is
        strictly faster than the baseline softmax at every grid point
        with equal-or-better p99 row error."""
        report = run_sweep(gpu=A100, cases=3)
        assert "lut" in report["dominates_baseline"]
        lut = report["variants"]["lut"]
        baseline = report["variants"]["baseline"]
        assert all(p["speedup_vs_baseline"] > 1.0 for p in lut["points"])
        assert (lut["accuracy"]["p99_row_err"]
                <= baseline["accuracy"]["p99_row_err"])
        # And the dominating variant's own contract holds.
        assert lut["contract_satisfied"] is True

    def test_four_models_priced(self):
        report = run_sweep(gpu=A100, cases=1, seq_lens=(512,))
        assert len(report["models"]) == 4
        point_models = {p["model"]
                        for p in report["variants"]["lut"]["points"]}
        assert len(point_models) == 4


class TestSpeedModel:
    def test_sdf_alone_is_slower_than_monolithic(self):
        """The decomposition is a fusion enabler, not a standalone win
        (Fig. 5): unfused LS+IR+GS re-streams the matrix twice."""
        report = small_sweep()
        assert report["variants"]["sdf"]["mean_speedup"] < 1.0

    def test_lut_speedup_from_duty_not_traffic(self):
        """LUT moves the same DRAM bytes — its win is issue duty."""
        report = small_sweep()
        lut = report["variants"]["lut"]["points"][0]
        base_bytes = report["variants"]["baseline"]["points"][0]
        assert lut["dram_bytes"] == base_bytes["dram_bytes"]
        assert lut["speedup_vs_baseline"] > 1.0

    def test_counters_present(self):
        report = small_sweep()
        for name in SOFTMAX_VARIANTS:
            counters = report["variants"][name]["counters"]
            assert counters["dram_bytes"] > 0
            assert "div_ops" in counters
        assert (report["variants"]["lut"]["counters"]["div_ops"]
                < report["variants"]["baseline"]["counters"]["div_ops"])
