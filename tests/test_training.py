"""Tests for the training-step simulation and backward kernel (§6)."""

import numpy as np
import pytest

from repro.common import DType, PlanError
from repro.core.backward import softmax_backward
from repro.gpu import A100
from repro.kernels.backward import SoftmaxBackwardKernel
from repro.kernels.softmax import safe_softmax
from repro.models.training import TrainingSDAStep

BH, L, D = 16, 4096, 64


class TestBackwardKernel:
    def test_numerics_match_eq3(self):
        rng = np.random.default_rng(0)
        y = safe_softmax(rng.standard_normal((8, 64)).astype(np.float32))
        dy = rng.standard_normal((8, 64)).astype(np.float32)
        kernel = SoftmaxBackwardKernel(rows=8, length=64, dtype=DType.FP32)
        np.testing.assert_allclose(
            kernel.compute(y, dy), softmax_backward(y, dy), atol=1e-6
        )

    def test_fp16_storage(self):
        rng = np.random.default_rng(1)
        y = safe_softmax(rng.standard_normal((4, 32)).astype(np.float32))
        dy = rng.standard_normal((4, 32)).astype(np.float32)
        kernel = SoftmaxBackwardKernel(rows=4, length=32)
        out = kernel.compute(y, dy)
        assert out.dtype == np.float32  # fp16-rounded values in fp32 storage
        np.testing.assert_allclose(out, softmax_backward(y, dy), atol=5e-3)

    def test_three_sweeps(self):
        kernel = SoftmaxBackwardKernel(rows=BH * L, length=L)
        launch = kernel.launch_spec(A100)
        sweep = BH * L * L * 2
        assert launch.dram_read_bytes == 2 * sweep
        assert launch.dram_write_bytes == sweep

    def test_memory_bound(self):
        from repro.gpu.costmodel import time_kernel

        kernel = SoftmaxBackwardKernel(rows=BH * L, length=L)
        assert time_kernel(A100, kernel.launch_spec(A100)).bound == "memory"

    def test_rejects_wrong_length(self):
        kernel = SoftmaxBackwardKernel(rows=4, length=32)
        with pytest.raises(Exception):
            kernel.compute(np.zeros((4, 16)), np.zeros((4, 16)))


class TestTrainingStep:
    def make(self, plan):
        return TrainingSDAStep(batch=1, num_heads=BH, seq_len=L, d_head=D,
                               plan=plan)

    def test_recomposition_speeds_training_forward(self):
        """Section 6: the forward-pass savings carry over to training."""
        base = self.make("baseline").simulate()
        sdf = self.make("sdf").simulate()
        assert sdf.forward.total_time() < 0.7 * base.forward.total_time()

    def test_backward_cost_nearly_identical(self):
        """The backward consumes only the softmax output; under SDF it
        reconstructs Y from X' and r' at negligible extra cost."""
        base = self.make("baseline").simulate()
        sdf = self.make("sdf").simulate()
        ratio = sdf.backward.total_time() / base.backward.total_time()
        assert ratio == pytest.approx(1.0, abs=0.05)
        # The only extra traffic is the 1/T-sized r' read.
        extra = (sdf.backward.total_dram_bytes()
                 - base.backward.total_dram_bytes())
        assert 0 <= extra < 0.02 * base.backward.total_dram_bytes()

    def test_whole_step_speedup(self):
        base = self.make("baseline").simulate()
        sdf = self.make("sdf").simulate()
        speedup = base.total_time / sdf.total_time
        # Backward (unchanged) dilutes the forward gain, but the step
        # still improves.
        assert 1.05 < speedup < base.forward.total_time() / sdf.forward.total_time()

    def test_backward_dominated_by_attention_traffic(self):
        """Backward sweeps the attention matrix ~7x (dV read, dA
        write+read, dX write+2 reads, softmax-backward reads) — more
        than the forward's 4."""
        base = self.make("baseline").simulate()
        assert (base.backward.total_dram_bytes()
                > 1.5 * base.forward.total_dram_bytes())

    def test_unsupported_plans_rejected(self):
        with pytest.raises(PlanError):
            self.make("online")
        with pytest.raises(PlanError):
            self.make("fused-mha")

    def test_kernel_counts(self):
        base = self.make("baseline").simulate()
        assert len(base.forward) == 3
        assert len(base.backward) == 5


class TestSparseTraining:
    def make(self, plan):
        from repro.models import AttentionKind, AttentionSpec

        return TrainingSDAStep(
            batch=1, num_heads=BH, seq_len=L, d_head=D, plan=plan,
            spec=AttentionSpec(kind=AttentionKind.BIGBIRD),
        )

    def test_sparse_forward_speedup_larger_than_dense(self):
        """Sparse training forward gains even more than dense (the
        baseline sparse softmax utilisation problem, Section 5.1)."""
        base = self.make("baseline").simulate()
        sdf = self.make("sdf").simulate()
        sparse_gain = base.forward.total_time() / sdf.forward.total_time()

        dense_base = TrainingSDAStep(batch=1, num_heads=BH, seq_len=L,
                                     d_head=D, plan="baseline").simulate()
        dense_sdf = TrainingSDAStep(batch=1, num_heads=BH, seq_len=L,
                                    d_head=D, plan="sdf").simulate()
        dense_gain = (dense_base.forward.total_time()
                      / dense_sdf.forward.total_time())
        assert sparse_gain > dense_gain

    def test_sparse_backward_plan_independent(self):
        base = self.make("baseline").simulate()
        sdf = self.make("sdf").simulate()
        assert sdf.backward.total_time() == pytest.approx(
            base.backward.total_time()
        )

    def test_sparse_backward_touches_only_nonzeros(self):
        """Backward gradient traffic scales with nnz, not L^2."""
        from repro.models import AttentionKind, AttentionSpec

        spec = AttentionSpec(kind=AttentionKind.BIGBIRD)
        layout = spec.layout(L)
        sparse = self.make("baseline").simulate()
        dense = TrainingSDAStep(batch=1, num_heads=BH, seq_len=L,
                                d_head=D, plan="baseline").simulate()
        ratio = (sparse.backward.total_dram_bytes()
                 / dense.backward.total_dram_bytes())
        assert ratio < 3 * layout.density

    def test_transposed_layout_statistics(self):
        from repro.sparse import bigbird_layout

        layout = bigbird_layout(4096, 64)
        t = layout.transposed()
        assert t.nnz_blocks == layout.nnz_blocks
        assert t.mask[3, 0] == layout.mask[0, 3]

    def test_sparse_softmax_backward_numerics(self):
        import numpy as np
        from repro.common import DType
        from repro.core.backward import softmax_backward
        from repro.kernels.backward import BlockSparseSoftmaxBackward
        from repro.sparse import BlockSparseMatrix, sliding_window_layout

        layout = sliding_window_layout(64, 16, window_blocks=3)
        rng = np.random.default_rng(0)
        y = BlockSparseMatrix(
            layout,
            rng.random((2, layout.nnz_blocks, 16, 16)).astype(np.float32),
        )
        dy = BlockSparseMatrix(
            layout,
            rng.standard_normal(
                (2, layout.nnz_blocks, 16, 16)).astype(np.float32),
        )
        kernel = BlockSparseSoftmaxBackward(layout, 2, dtype=DType.FP32)
        out = kernel.compute(y, dy)
        expected = softmax_backward(y.to_dense(), dy.to_dense())
        mask = layout.element_mask()
        np.testing.assert_allclose(
            out.to_dense()[:, mask], expected[:, mask], atol=1e-5
        )
