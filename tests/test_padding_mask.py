"""Tests for key-padding-mask support (variable-length batches)."""

import numpy as np
import pytest

from repro.common import PlanError, ShapeError
from repro.kernels.softmax import safe_softmax
from repro.models import AttentionKind, AttentionSpec, SDABlock

SPEC = AttentionSpec(kind=AttentionKind.DENSE)


def make_block(plan="baseline", lengths=(48, 64)):
    return SDABlock(batch=2, num_heads=2, seq_len=64, d_head=16,
                    spec=SPEC, plan=plan, t=16,
                    key_padding_lengths=np.array(lengths))


def make_qkv(seed=0):
    rng = np.random.default_rng(seed)
    return tuple(rng.standard_normal((4, 64, 16)).astype(np.float32)
                 for _ in range(3))


class TestPaddingMask:
    def test_matches_manually_masked_reference(self):
        q, k, v = make_qkv()
        out = make_block().forward(q, k, v)
        scores = np.matmul(q, np.swapaxes(k, 1, 2), dtype=np.float32) / 4.0
        # First batch item (heads 0-1): keys 48.. masked.
        scores[:2, :, 48:] = -np.inf
        expected = np.matmul(safe_softmax(scores), v, dtype=np.float32)
        np.testing.assert_allclose(out, expected, atol=5e-3)

    @pytest.mark.parametrize("plan", ["sd", "sdf", "online"])
    def test_plans_agree_under_padding(self, plan):
        q, k, v = make_qkv(seed=1)
        baseline = make_block("baseline").forward(q, k, v)
        other = make_block(plan).forward(q, k, v)
        np.testing.assert_allclose(other, baseline, atol=5e-3)

    def test_padded_keys_ignored(self):
        """Changing a padded key/value must not change the output."""
        q, k, v = make_qkv(seed=2)
        out1 = make_block().forward(q, k, v)
        k2, v2 = k.copy(), v.copy()
        k2[:2, 50:] += 100.0
        v2[:2, 50:] -= 100.0
        out2 = make_block().forward(q, k2, v2)
        np.testing.assert_array_equal(out1, out2)

    def test_unpadded_item_unaffected(self):
        q, k, v = make_qkv(seed=3)
        masked = make_block(lengths=(48, 64)).forward(q, k, v)
        unmasked = SDABlock(batch=2, num_heads=2, seq_len=64, d_head=16,
                            spec=SPEC).forward(q, k, v)
        # Second batch item (heads 2-3) has no padding: identical.
        np.testing.assert_array_equal(masked[2:], unmasked[2:])

    def test_causal_plus_padding(self):
        spec = AttentionSpec(kind=AttentionKind.DENSE_CAUSAL)
        q, k, v = make_qkv(seed=4)
        block = SDABlock(batch=2, num_heads=2, seq_len=64, d_head=16,
                         spec=spec, key_padding_lengths=np.array([32, 64]))
        out = block.forward(q, k, v)
        scores = np.matmul(q, np.swapaxes(k, 1, 2), dtype=np.float32) / 4.0
        causal = np.triu(np.full((64, 64), -np.inf, dtype=np.float32), k=1)
        scores = scores + causal
        scores[:2, :, 32:] = -np.inf
        expected = np.matmul(safe_softmax(scores), v, dtype=np.float32)
        np.testing.assert_allclose(out, expected, atol=5e-3)

    def test_shape_validation(self):
        with pytest.raises(ShapeError, match="key_padding_lengths"):
            SDABlock(batch=2, num_heads=2, seq_len=64, d_head=16,
                     spec=SPEC, key_padding_lengths=np.array([64]))

    def test_unsupported_plans_rejected(self):
        for plan in ("flash", "fused-mha"):
            with pytest.raises(PlanError, match="padding"):
                make_block(plan)
        with pytest.raises(PlanError, match="padding"):
            SDABlock(batch=2, num_heads=2, seq_len=256, d_head=16,
                     spec=AttentionSpec(kind=AttentionKind.BIGBIRD,
                                        block_size=16, global_blocks=1),
                     key_padding_lengths=np.array([128, 256]))
