"""Tests for the related-work softmax implementations (Section 7):
online softmax [21], TurboTransformers batched softmax [9]."""

import numpy as np
import pytest

from repro.common import KernelError
from repro.gpu import A100, Device
from repro.gpu.costmodel import time_kernel
from repro.kernels.softmax import (
    BatchedRowSoftmaxKernel,
    OnlineRowSoftmaxKernel,
    RowSoftmaxKernel,
)
from repro.models import AttentionKind, AttentionSpec, SDABlock


class TestBatchedSoftmax:
    def test_numerics_equal_baseline(self):
        x = np.random.default_rng(0).standard_normal((8, 256)).astype(np.float32)
        batched = BatchedRowSoftmaxKernel(rows=8, length=256)
        baseline = RowSoftmaxKernel(rows=8, length=256)
        np.testing.assert_array_equal(batched.compute(x), baseline.compute(x))

    def test_same_traffic_as_baseline(self):
        """[9] 'does not reduce the number of memory accesses'."""
        batched = BatchedRowSoftmaxKernel(rows=65536, length=1024)
        baseline = RowSoftmaxKernel(rows=65536, length=1024)
        lb = batched.launch_spec(A100)
        lm = baseline.launch_spec(A100)
        assert lb.dram_bytes == lm.dram_bytes

    def test_higher_utilization_than_baseline(self):
        """Batching rows per thread block raises SM utilisation."""
        batched = BatchedRowSoftmaxKernel(rows=65536, length=1024)
        baseline = RowSoftmaxKernel(rows=65536, length=1024)
        ub = time_kernel(A100, batched.launch_spec(A100)).bandwidth_utilization
        um = time_kernel(A100, baseline.launch_spec(A100)).bandwidth_utilization
        assert ub > um

    def test_length_cap(self):
        """'The method supports sequence lengths up to 1,024'."""
        BatchedRowSoftmaxKernel(rows=16, length=1024).launch_spec(A100)
        with pytest.raises(KernelError, match="1024"):
            BatchedRowSoftmaxKernel(rows=16, length=2048).launch_spec(A100)

    def test_fewer_thread_blocks(self):
        batched = BatchedRowSoftmaxKernel(rows=1000, length=512)
        launch = batched.launch_spec(A100)
        assert launch.shape.grid == 250  # 4 rows per thread block


class TestOnlineVsBatchedVsSDF:
    """The Section 7 positioning: both related-work kernels improve the
    standalone softmax but keep its 2 sweeps; SDF removes them."""

    def sda_time(self, plan, seq_len):
        device = Device("A100")
        SDABlock(batch=1, num_heads=16, seq_len=seq_len, d_head=64,
                 spec=AttentionSpec(kind=AttentionKind.DENSE),
                 plan=plan).simulate(device)
        return device.profile.total_time()

    def test_ordering_at_short_length(self):
        times = {plan: self.sda_time(plan, 1024)
                 for plan in ("baseline", "online", "turbo", "sdf")}
        assert times["online"] < times["baseline"]
        assert times["turbo"] < times["baseline"]
        assert times["sdf"] < times["online"]
        assert times["sdf"] < times["turbo"]

    def test_turbo_unavailable_at_long_length(self):
        with pytest.raises(KernelError):
            self.sda_time("turbo", 4096)

    def test_online_available_but_loses_at_long_length(self):
        online = self.sda_time("online", 4096)
        sdf = self.sda_time("sdf", 4096)
        assert sdf < 0.8 * online

    def test_online_duty_above_baseline(self):
        online = OnlineRowSoftmaxKernel(rows=1000, length=1024)
        baseline = RowSoftmaxKernel(rows=1000, length=1024)
        assert (online.launch_spec(A100).issue_fraction
                > baseline.launch_spec(A100).issue_fraction)
