"""Tests for the fully fused MHA kernel (Section 7 related work)."""

import numpy as np
import pytest

from repro.common import KernelError, PlanError
from repro.gpu import A100, Device, T4
from repro.kernels.mha_fused import (
    FullyFusedMHAKernel,
    max_fusable_seq_len,
    shared_mem_demand,
)
from repro.models import AttentionKind, AttentionSpec, SDABlock


class TestFeasibility:
    def test_shared_mem_linear_in_seq_len(self):
        assert (shared_mem_demand(512, 64)
                < shared_mem_demand(1024, 64)
                < shared_mem_demand(4096, 64))

    def test_max_fusable_length_short(self):
        """The Section 7 limitation: only short sequences fit."""
        for spec in (A100, T4):
            limit = max_fusable_seq_len(spec)
            assert 128 <= limit <= 2048, spec.name
        # Smaller shared memory -> shorter limit.
        assert max_fusable_seq_len(T4) < max_fusable_seq_len(A100)

    def test_short_sequence_launches(self):
        kernel = FullyFusedMHAKernel(16, 256, 64)
        launch = kernel.launch_spec(A100)
        # No attention-matrix traffic at all: just Q/K/V in, O out.
        assert launch.dram_bytes == 4 * 16 * 256 * 64 * 2

    def test_long_sequence_rejected(self):
        kernel = FullyFusedMHAKernel(16, 4096, 64)
        with pytest.raises(KernelError, match="max fusable L"):
            kernel.launch_spec(A100)

    def test_rejected_exactly_beyond_limit(self):
        limit = max_fusable_seq_len(A100)
        FullyFusedMHAKernel(1, limit, 64).launch_spec(A100)
        with pytest.raises(KernelError):
            FullyFusedMHAKernel(1, limit + 64, 64).launch_spec(A100)


class TestNumerics:
    def test_matches_baseline_attention(self):
        rng = np.random.default_rng(0)
        q, k, v = (rng.standard_normal((4, 64, 16)).astype(np.float32)
                   for _ in range(3))
        scale = 1 / 4.0
        fused = FullyFusedMHAKernel(4, 64, 16, scale=scale)
        block = SDABlock(batch=2, num_heads=2, seq_len=64, d_head=16,
                         spec=AttentionSpec(kind=AttentionKind.DENSE),
                         plan="baseline")
        np.testing.assert_allclose(
            fused.compute(q, k, v), block.forward(q, k, v), atol=5e-3
        )

    def test_plan_integration(self):
        rng = np.random.default_rng(1)
        q, k, v = (rng.standard_normal((4, 128, 16)).astype(np.float32)
                   for _ in range(3))
        kwargs = dict(batch=2, num_heads=2, seq_len=128, d_head=16,
                      spec=AttentionSpec(kind=AttentionKind.DENSE))
        baseline = SDABlock(plan="baseline", **kwargs).forward(q, k, v)
        fused = SDABlock(plan="fused-mha", **kwargs).forward(q, k, v)
        np.testing.assert_allclose(fused, baseline, atol=5e-3)

    def test_shape_validation(self):
        kernel = FullyFusedMHAKernel(2, 32, 8)
        with pytest.raises(Exception):
            kernel.compute(np.zeros((2, 32, 9)), np.zeros((2, 32, 8)),
                           np.zeros((2, 32, 8)))


class TestPositioning:
    """Why recomposition matters: full fusion wins where it exists and
    simply does not exist at the paper's scales."""

    def test_beats_sdf_at_short_sequences(self):
        kwargs = dict(batch=1, num_heads=16, seq_len=256, d_head=64,
                      spec=AttentionSpec(kind=AttentionKind.DENSE))
        times = {}
        for plan in ("baseline", "sdf", "fused-mha"):
            device = Device("A100")
            SDABlock(plan=plan, **kwargs).simulate(device)
            times[plan] = device.profile.total_time()
        assert times["fused-mha"] < times["sdf"] < times["baseline"]

    def test_infeasible_at_paper_scale(self):
        block = SDABlock(batch=1, num_heads=16, seq_len=4096, d_head=64,
                         spec=AttentionSpec(kind=AttentionKind.DENSE),
                         plan="fused-mha")
        with pytest.raises(KernelError, match="max fusable"):
            block.simulate(Device("A100"))

    def test_rejected_for_causal_and_sparse(self):
        with pytest.raises(PlanError):
            SDABlock(batch=1, num_heads=2, seq_len=128, d_head=16,
                     spec=AttentionSpec(kind=AttentionKind.DENSE_CAUSAL),
                     plan="fused-mha")
        with pytest.raises(PlanError):
            SDABlock(batch=1, num_heads=2, seq_len=256, d_head=16,
                     spec=AttentionSpec(kind=AttentionKind.BIGBIRD,
                                        block_size=16, global_blocks=1),
                     plan="fused-mha")
