"""Tests for the streaming quantile sketch.

The sketch's contract (see ``docs/performance.md``): deterministic,
mergeable, bounded memory, exact count/min/max, and percentile answers
whose *rank* error stays small — especially at the tails, where the
arcsine scale function concentrates resolution.
"""

import numpy as np
import pytest

from repro.common.errors import MetricsError
from repro.serving import QuantileSketch
from repro.serving.sketch import SKETCH_COMPRESSION


def empirical_rank(ordered: np.ndarray, value: float) -> float:
    """Mid-rank of ``value`` in a sorted sample, in [0, 1]."""
    lo = np.searchsorted(ordered, value, side="left")
    hi = np.searchsorted(ordered, value, side="right")
    return float((lo + hi) / 2.0 / len(ordered))


def streams():
    rng = np.random.default_rng(11)
    n = 50_000
    low = np.abs(rng.normal(0.05, 0.01, size=n // 2))
    high = np.abs(rng.normal(5.0, 0.5, size=n - n // 2))
    bimodal = np.concatenate([low, high])
    rng.shuffle(bimodal)
    return {
        "uniform": rng.uniform(0.0, 10.0, size=n),
        "lognormal": rng.lognormal(mean=-2.0, sigma=1.0, size=n),
        "bimodal": bimodal,
        "pareto": rng.pareto(1.5, size=n) + 1e-3,
    }


class TestRankError:
    @pytest.mark.parametrize("name", ["uniform", "lognormal", "bimodal",
                                      "pareto"])
    def test_p50_p95_p99_within_rank_budget(self, name):
        values = streams()[name]
        sketch = QuantileSketch()
        sketch.extend(values)
        ordered = np.sort(values)
        # The arcsine scale tightens toward the tails: budget the
        # median loosely and the tail percentiles hard.
        for q, budget in ((50.0, 0.02), (95.0, 0.01), (99.0, 0.005)):
            rank = empirical_rank(ordered, sketch.quantile(q))
            assert abs(rank - q / 100.0) <= budget, (
                f"{name}: p{q:g} rank {rank:.4f} off by more than {budget}")

    def test_constant_stream_is_exact(self):
        sketch = QuantileSketch()
        sketch.extend([0.125] * 10_000)
        for q in (0.0, 50.0, 95.0, 99.0, 100.0):
            assert sketch.quantile(q) == 0.125

    def test_quantiles_nondecreasing(self):
        values = streams()["pareto"]
        sketch = QuantileSketch()
        sketch.extend(values)
        answers = sketch.quantiles(np.linspace(0, 100, 101))
        assert all(b >= a for a, b in zip(answers, answers[1:]))


class TestExactness:
    def test_count_min_max_exact(self):
        values = streams()["lognormal"]
        sketch = QuantileSketch()
        sketch.extend(values)
        assert sketch.count == len(values) == len(sketch)
        assert sketch.min == float(values.min())
        assert sketch.max == float(values.max())

    def test_extremes_anchor_p0_p100(self):
        values = streams()["uniform"]
        sketch = QuantileSketch()
        sketch.extend(values)
        assert sketch.quantile(0.0) == float(values.min())
        assert sketch.quantile(100.0) == float(values.max())

    def test_empty_sketch(self):
        sketch = QuantileSketch()
        assert sketch.count == 0
        assert sketch.quantile(50.0) == 0.0
        assert sketch.min == 0.0 and sketch.max == 0.0

    def test_rejects_non_finite_and_bad_rank(self):
        sketch = QuantileSketch()
        with pytest.raises(MetricsError):
            sketch.add(float("nan"))
        with pytest.raises(MetricsError):
            sketch.add(float("inf"))
        sketch.add(1.0)
        with pytest.raises(MetricsError):
            sketch.quantile(101.0)


class TestDeterminismAndMerge:
    def test_same_stream_same_answers(self):
        values = streams()["bimodal"]
        a, b = QuantileSketch(), QuantileSketch()
        a.extend(values)
        b.extend(values)
        assert a.quantiles((50, 95, 99)) == b.quantiles((50, 95, 99))

    def test_merge_in_fixed_order_is_deterministic(self):
        values = streams()["uniform"]
        shards = np.array_split(values, 4)

        def merged():
            parts = []
            for shard in shards:
                sketch = QuantileSketch()
                sketch.extend(shard)
                parts.append(sketch)
            out = QuantileSketch()
            for part in parts:
                out.merge(part)
            return out

        first, second = merged(), merged()
        assert first.count == second.count == len(values)
        assert first.quantiles((50, 95, 99)) == second.quantiles((50, 95, 99))

    def test_merged_answers_match_whole_stream_ranks(self):
        values = streams()["pareto"]
        ordered = np.sort(values)
        half = len(values) // 2
        left, right = QuantileSketch(), QuantileSketch()
        left.extend(values[:half])
        right.extend(values[half:])
        left.merge(right)
        assert left.count == len(values)
        assert left.min == float(values.min())
        assert left.max == float(values.max())
        for q, budget in ((50.0, 0.02), (95.0, 0.01), (99.0, 0.01)):
            rank = empirical_rank(ordered, left.quantile(q))
            assert abs(rank - q / 100.0) <= budget

    def test_merge_empty_is_noop(self):
        sketch = QuantileSketch()
        sketch.extend([1.0, 2.0, 3.0])
        before = sketch.quantiles((50, 95, 99))
        sketch.merge(QuantileSketch())
        assert sketch.count == 3
        assert sketch.quantiles((50, 95, 99)) == before

    def test_merge_into_empty_adopts_the_shard(self):
        """The sharded-cluster edge case: the parent's accumulator is
        empty and the first worker shard merges into it."""
        shard = QuantileSketch()
        shard.extend([4.0, 8.0, 2.0])
        out = QuantileSketch()
        out.merge(shard)
        assert out.count == 3
        assert out.min == 2.0 and out.max == 8.0
        assert out.quantiles((50, 95, 99)) == shard.quantiles(
            (50, 95, 99))

    def test_merge_of_two_empty_sketches_stays_empty(self):
        out = QuantileSketch()
        out.merge(QuantileSketch())
        assert out.count == 0
        assert out.quantile(50.0) == 0.0

    def test_single_element_shards_merge_exactly(self):
        """Replicas that finished exactly one request each: the merged
        sketch must reproduce the tiny population's exact order
        statistics, including duplicates."""
        values = [0.25, 4.0, 1.0, 1.0]
        out = QuantileSketch()
        for value in values:
            shard = QuantileSketch()
            shard.add(value)
            assert shard.count == 1
            assert shard.quantile(50.0) == value
            out.merge(shard)
        assert out.count == len(values)
        assert out.min == 0.25 and out.max == 4.0
        assert out.quantile(0.0) == 0.25
        assert out.quantile(100.0) == 4.0
        assert out.quantile(50.0) == pytest.approx(1.0)

    def test_merge_at_flush_boundary_matches_streaming_exactly(self):
        """Regression: merging a shard into a sketch sitting exactly at
        a flush boundary must produce the same centroid layout — not
        just the same quantile answers — as streaming every value into
        one sketch in order.  The old merge path re-binned the already
        flushed buffer a second time, which drifted the layout."""
        rng = np.random.default_rng(17)
        boundary = QuantileSketch().buffer_size
        head = rng.exponential(size=boundary)
        tail = rng.exponential(size=37)

        streamed = QuantileSketch()
        streamed.extend(head)
        streamed.extend(tail)

        left = QuantileSketch()
        left.extend(head)  # exactly one full buffer: flushes here
        assert not left._buffer
        right = QuantileSketch()
        right.extend(tail)
        left.merge(right)

        assert left.count == streamed.count
        left._flush()
        streamed._flush()
        assert np.array_equal(left._means, streamed._means)
        assert np.array_equal(left._weights, streamed._weights)

    def test_single_element_merge_matches_direct_stream(self):
        rng = np.random.default_rng(11)
        values = rng.exponential(size=64)
        direct = QuantileSketch()
        direct.extend(values)
        merged = QuantileSketch()
        for value in values:
            shard = QuantileSketch()
            shard.add(float(value))
            merged.merge(shard)
        assert merged.count == direct.count
        assert merged.min == direct.min
        assert merged.max == direct.max
        ordered = np.sort(values)
        for q in (50.0, 95.0, 99.0):
            rank = empirical_rank(ordered, merged.quantile(q))
            assert abs(rank - q / 100.0) <= 0.03


class TestBoundedMemory:
    def test_centroids_bounded_regardless_of_stream_length(self):
        sketch = QuantileSketch()
        rng = np.random.default_rng(3)
        sketch.extend(rng.uniform(size=200_000))
        assert sketch.centroid_count <= SKETCH_COMPRESSION

    def test_compression_trades_memory_for_accuracy(self):
        coarse = QuantileSketch(compression=25)
        fine = QuantileSketch(compression=400)
        rng = np.random.default_rng(5)
        values = rng.uniform(size=50_000)
        coarse.extend(values)
        fine.extend(values)
        assert coarse.centroid_count < fine.centroid_count


class TestOracleRegistration:
    def test_sketch_oracle_registered_in_serving_family(self):
        from repro.verify.oracles import default_registry

        registry = default_registry()
        assert "serving.quantile_sketch_rank" in registry.names()
        oracle = registry.get("serving.quantile_sketch_rank")
        assert oracle.family == "serving"
