"""Tests for the thread-block occupancy calculator."""

import pytest

from repro.common import KIB, KernelError
from repro.gpu import A100, T4, TBResources, compute_occupancy


class TestOccupancy:
    def test_small_tb_full_occupancy(self):
        occ = compute_occupancy(A100, TBResources(threads=256, shared_mem=0))
        assert occ.warps_per_sm == A100.max_warps_per_sm
        assert occ.fraction == 1.0

    def test_thread_limited(self):
        occ = compute_occupancy(A100, TBResources(threads=1024))
        assert occ.tbs_per_sm == 2
        assert occ.limiter == "threads"

    def test_shared_mem_limited(self):
        # 40 KiB per TB -> only 4 TBs fit in the 164 KiB carve-out.
        occ = compute_occupancy(
            A100, TBResources(threads=128, shared_mem=40 * KIB)
        )
        assert occ.tbs_per_sm == 4
        assert occ.limiter == "shared_mem"
        assert occ.warps_per_sm == 16

    def test_register_limited(self):
        occ = compute_occupancy(
            A100, TBResources(threads=256, registers_per_thread=255)
        )
        assert occ.limiter == "registers"
        assert occ.tbs_per_sm == 65_536 // (255 * 256)

    def test_tb_slot_limited(self):
        occ = compute_occupancy(A100, TBResources(threads=32))
        assert occ.tbs_per_sm == A100.max_tbs_per_sm
        assert occ.limiter == "tb_slots"

    def test_does_not_fit_raises(self):
        with pytest.raises(KernelError, match="does not fit"):
            compute_occupancy(
                A100, TBResources(threads=128, shared_mem=200 * KIB)
            )

    def test_t4_one_max_size_tb(self):
        occ = compute_occupancy(T4, TBResources(threads=1024))
        assert occ.tbs_per_sm == 1
        assert occ.warps_per_sm == 32

    def test_warps_capped_at_device_max(self):
        occ = compute_occupancy(A100, TBResources(threads=64))
        assert occ.warps_per_sm <= A100.max_warps_per_sm

    def test_occupancy_monotone_in_shared_mem(self):
        """More shared memory per TB never increases occupancy."""
        previous = None
        for smem in (0, 8 * KIB, 16 * KIB, 32 * KIB, 64 * KIB):
            occ = compute_occupancy(A100, TBResources(threads=128, shared_mem=smem))
            if previous is not None:
                assert occ.tbs_per_sm <= previous
            previous = occ.tbs_per_sm

    def test_resource_validation(self):
        with pytest.raises(Exception):
            TBResources(threads=0)
        with pytest.raises(Exception):
            TBResources(threads=128, shared_mem=-1)
