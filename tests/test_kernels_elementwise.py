"""Tests for the element-wise and LayerNorm kernels."""

import numpy as np
import pytest
from scipy.stats import norm

from repro.common import DType, ShapeError
from repro.gpu import A100
from repro.kernels import (
    AddBiasGeluKernel,
    LayerNormKernel,
    ResidualAddKernel,
    ScaleMaskKernel,
)
from repro.kernels.elementwise import gelu


class TestGelu:
    def test_matches_exact_gelu(self):
        """tanh-GeLU approximates x * Phi(x) closely."""
        x = np.linspace(-4, 4, 101).astype(np.float32)
        exact = x * norm.cdf(x)
        np.testing.assert_allclose(gelu(x), exact, atol=3e-3)

    def test_asymptotes(self):
        assert gelu(np.array([10.0]))[0] == pytest.approx(10.0, rel=1e-4)
        assert gelu(np.array([-10.0]))[0] == pytest.approx(0.0, abs=1e-4)

    def test_zero(self):
        assert gelu(np.array([0.0]))[0] == 0.0


class TestScaleMask:
    def test_scale_only(self):
        kernel = ScaleMaskKernel(16, scale=0.5, dtype=DType.FP32)
        x = np.arange(16, dtype=np.float32)
        np.testing.assert_allclose(kernel.compute(x), x * 0.5)

    def test_additive_mask(self):
        kernel = ScaleMaskKernel(4, scale=1.0, dtype=DType.FP32)
        x = np.ones(4, dtype=np.float32)
        mask = np.array([0.0, -np.inf, 0.0, -np.inf], dtype=np.float32)
        out = kernel.compute(x, mask)
        assert out[0] == 1.0
        assert np.isneginf(out[1])

    def test_traffic_one_read_one_write(self):
        kernel = ScaleMaskKernel(1_000_000, scale=1.0)
        launch = kernel.launch_spec(A100)
        assert launch.dram_read_bytes == 2_000_000
        assert launch.dram_write_bytes == 2_000_000


class TestResidualAdd:
    def test_numerics(self):
        kernel = ResidualAddKernel(8, dtype=DType.FP32)
        x = np.ones(8, dtype=np.float32)
        r = np.full(8, 2.0, dtype=np.float32)
        np.testing.assert_allclose(kernel.compute(x, r), 3.0)

    def test_shape_mismatch(self):
        kernel = ResidualAddKernel(8)
        with pytest.raises(ShapeError):
            kernel.compute(np.zeros(8), np.zeros(4))

    def test_reads_two_operands(self):
        kernel = ResidualAddKernel(1_000_000)
        launch = kernel.launch_spec(A100)
        assert launch.dram_read_bytes == 2 * launch.dram_write_bytes


class TestAddBiasGelu:
    def test_numerics(self):
        kernel = AddBiasGeluKernel(8, dtype=DType.FP32)
        x = np.zeros(8, dtype=np.float32)
        bias = np.full(8, 2.0, dtype=np.float32)
        np.testing.assert_allclose(kernel.compute(x, bias), gelu(
            np.full(8, 2.0, dtype=np.float32)), atol=1e-6)

    def test_category(self):
        assert AddBiasGeluKernel(8).category == "feedforward"


class TestLayerNorm:
    def test_normalizes_rows(self):
        kernel = LayerNormKernel(rows=4, width=64, dtype=DType.FP32)
        rng = np.random.default_rng(0)
        x = rng.standard_normal((4, 64)).astype(np.float32) * 3 + 5
        out = kernel.compute(x, np.ones(64, dtype=np.float32),
                             np.zeros(64, dtype=np.float32))
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-5)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-3)

    def test_gamma_beta(self):
        kernel = LayerNormKernel(rows=1, width=4, dtype=DType.FP32)
        x = np.array([[1.0, 2.0, 3.0, 4.0]], dtype=np.float32)
        gamma = np.full(4, 2.0, dtype=np.float32)
        beta = np.full(4, 1.0, dtype=np.float32)
        plain = kernel.compute(x, np.ones(4, dtype=np.float32),
                               np.zeros(4, dtype=np.float32))
        scaled = kernel.compute(x, gamma, beta)
        np.testing.assert_allclose(scaled, plain * 2 + 1, atol=1e-5)

    def test_rejects_wrong_width(self):
        kernel = LayerNormKernel(rows=2, width=8)
        with pytest.raises(ShapeError):
            kernel.compute(np.zeros((2, 4)), np.ones(4), np.zeros(4))

    def test_memory_bound_reduction(self):
        from repro.gpu.costmodel import time_kernel

        kernel = LayerNormKernel(rows=4096, width=1024)
        timing = time_kernel(A100, kernel.launch_spec(A100))
        assert timing.bound == "memory"
