"""Tests for softmax decomposition: LS ∘ IR ∘ GS ≡ safe softmax (Eq. 2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common import DType
from repro.gpu import A100
from repro.kernels import (
    GlobalScaleKernel,
    InterReductionKernel,
    LocalSoftmaxKernel,
    RowSoftmaxKernel,
)
from repro.kernels.decomposed import (
    global_scaling,
    inter_reduction,
    local_softmax,
)
from repro.kernels.softmax import safe_softmax


def decomposed_softmax(x, t):
    """Full LS -> IR -> GS composition in pure fp32 math."""
    x_prime, m_prime, d_prime = local_softmax(x, t)
    r_prime = inter_reduction(m_prime, d_prime)
    return global_scaling(x_prime, r_prime, t)


class TestEquation2:
    """The decomposed softmax is mathematically identical to softmax."""

    @pytest.mark.parametrize("t", [1, 2, 8, 32, 64, 256])
    def test_matches_monolithic(self, t):
        x = np.random.default_rng(3).standard_normal((4, 256)).astype(np.float32)
        np.testing.assert_allclose(
            decomposed_softmax(x, t), safe_softmax(x), rtol=1e-5, atol=1e-7
        )

    def test_t_equal_length_is_monolithic(self):
        x = np.random.default_rng(4).standard_normal((3, 64)).astype(np.float32)
        np.testing.assert_allclose(
            decomposed_softmax(x, 64), safe_softmax(x), rtol=1e-6
        )

    def test_batched_heads_shape(self):
        x = np.random.default_rng(5).standard_normal((2, 4, 8, 128))
        out = decomposed_softmax(x, 32)
        assert out.shape == x.shape
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, rtol=1e-5)

    def test_masked_subvector(self):
        """A fully masked sub-vector must contribute nothing."""
        x = np.zeros((1, 8), dtype=np.float32)
        x[0, 4:] = -np.inf
        out = decomposed_softmax(x, 4)
        np.testing.assert_allclose(out[0, :4], 0.25, rtol=1e-6)
        np.testing.assert_array_equal(out[0, 4:], 0.0)

    def test_fully_masked_row(self):
        x = np.full((2, 16), -np.inf, dtype=np.float32)
        np.testing.assert_array_equal(decomposed_softmax(x, 4), np.zeros((2, 16)))

    def test_extreme_magnitudes(self):
        """Safe-softmax stability must survive decomposition."""
        x = np.array([[1e4, -1e4, 1e4 + 2, 0.0]], dtype=np.float32)
        out = decomposed_softmax(x, 2)
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out, safe_softmax(x), rtol=1e-5, atol=1e-8)

    @given(
        rows=st.integers(1, 6),
        n_sv=st.integers(1, 8),
        t=st.sampled_from([1, 2, 4, 8, 16]),
        seed=st.integers(0, 2**31 - 1),
        scale=st.floats(0.01, 50.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_equivalence(self, rows, n_sv, t, seed, scale):
        """For any shape/scale, decomposition reproduces softmax."""
        x = (
            np.random.default_rng(seed)
            .standard_normal((rows, n_sv * t))
            .astype(np.float32)
            * scale
        )
        np.testing.assert_allclose(
            decomposed_softmax(x, t), safe_softmax(x), rtol=1e-4, atol=1e-6
        )

    @given(
        t=st.sampled_from([2, 4, 8]),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_rows_sum_to_one(self, t, seed):
        x = np.random.default_rng(seed).standard_normal((3, 32)).astype(np.float32)
        out = decomposed_softmax(x, t)
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, rtol=1e-5)

    @given(seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_property_reconstruction_factors_sum(self, seed):
        """Sum over k of r'_k * (locally-normalised mass 1) == 1: the
        reconstruction factors are a convex combination of sub-vectors."""
        x = np.random.default_rng(seed).standard_normal((5, 64)).astype(np.float32)
        _, m_prime, d_prime = local_softmax(x, 8)
        r_prime = inter_reduction(m_prime, d_prime)
        np.testing.assert_allclose(r_prime.sum(axis=-1), 1.0, rtol=1e-5)
        assert np.all(r_prime >= 0)


class TestKernelObjects:
    def test_kernel_pipeline_matches_fp16_softmax(self):
        x = np.random.default_rng(6).standard_normal((2, 8, 128)).astype(np.float32)
        ls = LocalSoftmaxKernel(num_subvectors=2 * 8 * 4, t=32)
        ir = InterReductionKernel(rows=16, mean_subvectors=4)
        gs = GlobalScaleKernel(num_subvectors=2 * 8 * 4, t=32)
        mono = RowSoftmaxKernel(rows=16, length=128)

        x_prime, m_prime, d_prime = ls.compute(x)
        r_prime = ir.compute(m_prime, d_prime)
        y = gs.compute(x_prime, r_prime)
        np.testing.assert_allclose(y, mono.compute(x), atol=2e-3)

    def test_ls_traffic_one_read_one_write_plus_stats(self):
        ls = LocalSoftmaxKernel(num_subvectors=65536 * 64, t=64,
                                dtype=DType.FP16)
        launch = ls.launch_spec(A100)
        elements = 65536 * 64 * 64
        assert launch.dram_read_bytes == elements * 2
        assert launch.dram_write_bytes == elements * 2 + 2 * 65536 * 64 * 4

    def test_ir_traffic_is_one_over_t_scale(self):
        """IR sweeps only intermediates: tiny next to the matrix (Fig. 5)."""
        rows, n_sv, t = 65536, 64, 64
        ir = InterReductionKernel(rows=rows, mean_subvectors=n_sv)
        ls = LocalSoftmaxKernel(num_subvectors=rows * n_sv, t=t)
        ir_bytes = ir.launch_spec(A100).dram_bytes
        ls_bytes = ls.launch_spec(A100).dram_bytes
        assert ir_bytes < ls_bytes / 16

    def test_gs_reads_include_r_prime(self):
        gs = GlobalScaleKernel(num_subvectors=1000, t=64, dtype=DType.FP16)
        launch = gs.launch_spec(A100)
        assert launch.dram_read_bytes == 1000 * 64 * 2 + 1000 * 4
        assert launch.dram_write_bytes == 1000 * 64 * 2

    def test_ls_and_gs_run_at_streaming_bandwidth(self):
        """Decomposition restores streaming access (the point of §3.2)."""
        from repro.gpu.costmodel import time_kernel

        ls = LocalSoftmaxKernel(num_subvectors=65536 * 64, t=64)
        gs = GlobalScaleKernel(num_subvectors=65536 * 64, t=64)
        for kernel in (ls, gs):
            timing = time_kernel(A100, kernel.launch_spec(A100))
            assert timing.bandwidth_utilization == pytest.approx(
                A100.streaming_efficiency, rel=0.02
            )


class TestEmptyReductionEdgeCases:
    """The d' = 0 paths: fully masked rows/sub-vectors, and T = 1 where
    every sub-vector holds a single element (so one masked element is
    an entire empty reduction)."""

    def test_t1_matches_monolithic(self):
        x = np.random.default_rng(11).standard_normal(
            (3, 16)).astype(np.float32)
        np.testing.assert_allclose(
            decomposed_softmax(x, 1), safe_softmax(x), rtol=1e-5, atol=1e-7
        )

    def test_t1_masked_elements_are_empty_subvectors(self):
        x = np.random.default_rng(12).standard_normal(
            (2, 8)).astype(np.float32)
        x[0, ::2] = -np.inf          # alternating empty sub-vectors
        x[1, :] = -np.inf            # every sub-vector of the row empty
        out = decomposed_softmax(x, 1)
        np.testing.assert_allclose(out, safe_softmax(x),
                                   rtol=1e-5, atol=1e-7)
        np.testing.assert_array_equal(out[0, ::2], 0.0)
        np.testing.assert_array_equal(out[1], 0.0)

    def test_kernel_pipeline_fully_masked_row(self):
        x = np.random.default_rng(13).standard_normal(
            (2, 16)).astype(np.float32)
        x[0, :] = -np.inf
        ls = LocalSoftmaxKernel(num_subvectors=2 * 4, t=4, dtype=DType.FP32)
        ir = InterReductionKernel(rows=2, mean_subvectors=4)
        gs = GlobalScaleKernel(num_subvectors=2 * 4, t=4, dtype=DType.FP32)
        x_prime, m_prime, d_prime = ls.compute(x)
        out = gs.compute(x_prime, ir.compute(m_prime, d_prime))
        np.testing.assert_array_equal(out[0], 0.0)
        np.testing.assert_allclose(out[1].sum(), 1.0, rtol=1e-5)
        expected = RowSoftmaxKernel(rows=2, length=16,
                                    dtype=DType.FP32).compute(x)
        np.testing.assert_allclose(out, expected, rtol=1e-5, atol=1e-7)

    def test_kernel_pipeline_t1_single_element_subvectors(self):
        x = np.random.default_rng(14).standard_normal(
            (4, 8)).astype(np.float32)
        x[0, 3] = -np.inf
        x[2, :] = -np.inf
        ls = LocalSoftmaxKernel(num_subvectors=4 * 8, t=1, dtype=DType.FP32)
        ir = InterReductionKernel(rows=4, mean_subvectors=8)
        gs = GlobalScaleKernel(num_subvectors=4 * 8, t=1, dtype=DType.FP32)
        x_prime, m_prime, d_prime = ls.compute(x)
        out = gs.compute(x_prime, ir.compute(m_prime, d_prime))
        expected = RowSoftmaxKernel(rows=4, length=8,
                                    dtype=DType.FP32).compute(x)
        np.testing.assert_allclose(out, expected, rtol=1e-5, atol=1e-7)
        np.testing.assert_array_equal(out[2], 0.0)
        assert out[0, 3] == 0.0
