"""Tests for GPU specifications (Table 1 of the paper)."""

import dataclasses

import pytest

from repro.common import ConfigError, GB, KIB, MIB, TERA
from repro.gpu import A100, RTX3090, T4, get_gpu
from repro.gpu.specs import all_gpus


class TestTable1:
    """The presets must encode Table 1 verbatim."""

    def test_memory_bandwidth(self):
        assert A100.mem_bandwidth == 1_555 * GB
        assert RTX3090.mem_bandwidth == pytest.approx(936.2 * GB)
        assert T4.mem_bandwidth == 320 * GB

    def test_fp16_cuda_tflops(self):
        assert A100.fp16_cuda_flops == pytest.approx(42.3 * TERA)
        assert RTX3090.fp16_cuda_flops == pytest.approx(29.3 * TERA)
        assert T4.fp16_cuda_flops == pytest.approx(24.0 * TERA)

    def test_fp16_tensor_tflops(self):
        assert A100.fp16_tensor_flops == pytest.approx(169 * TERA)
        assert RTX3090.fp16_tensor_flops == pytest.approx(58 * TERA)
        assert T4.fp16_tensor_flops == pytest.approx(24.0 * TERA)

    def test_l1_per_sm(self):
        assert A100.l1_per_sm == 192 * KIB
        assert RTX3090.l1_per_sm == 128 * KIB
        assert T4.l1_per_sm == 64 * KIB

    def test_l2_size(self):
        assert A100.l2_size == 40 * MIB
        assert RTX3090.l2_size == 6 * MIB
        assert T4.l2_size == 4 * MIB


class TestSpecProperties:
    def test_max_warps(self):
        assert A100.max_warps_per_sm == 64
        assert RTX3090.max_warps_per_sm == 48
        assert T4.max_warps_per_sm == 32

    def test_tb_slots(self):
        assert A100.tb_slots == 108 * 32

    def test_saturation_warps_positive(self):
        for spec in all_gpus():
            assert spec.saturation_warps_per_sm(512.0) > 0

    def test_saturation_warps_scales_inverse_with_mlp(self):
        low = A100.saturation_warps_per_sm(128.0)
        high = A100.saturation_warps_per_sm(512.0)
        assert low == pytest.approx(4 * high)

    def test_saturation_rejects_bad_mlp(self):
        with pytest.raises(ConfigError):
            A100.saturation_warps_per_sm(0)

    def test_invalid_carveout_rejected(self):
        with pytest.raises(ConfigError, match="carve-out"):
            dataclasses.replace(A100, max_shared_mem_per_sm=A100.l1_per_sm + 1)


class TestLookup:
    @pytest.mark.parametrize(
        "name,expected",
        [("a100", A100), ("A100", A100), ("rtx 3090", RTX3090),
         ("RTX-3090", RTX3090), ("t4", T4)],
    )
    def test_get_gpu(self, name, expected):
        assert get_gpu(name) is expected

    def test_get_gpu_unknown(self):
        with pytest.raises(ConfigError, match="unknown GPU"):
            get_gpu("mi300")

    def test_h100_future_gpu_available(self):
        """H100 is provided for the Section 2.3 future-GPU projection
        (not part of Table 1, so absent from all_gpus())."""
        h100 = get_gpu("h100")
        assert h100.name == "H100"
        assert h100 not in all_gpus()

    def test_all_gpus_order(self):
        assert [spec.name for spec in all_gpus()] == ["A100", "RTX 3090", "T4"]


class TestExtraGenerations:
    """V100 and H100 are provided beyond Table 1 for the Section 2.3
    generational trend."""

    def test_v100_available(self):
        v100 = get_gpu("v100")
        assert v100.name == "V100"
        assert v100 not in all_gpus()

    def test_machine_balance_grows_across_generations(self):
        """T4 -> A100 -> H100 machine balance rises monotonically (the
        Section 2.3 memory wall); V100's base-clock balance sits near
        the A100's — HBM2e's bandwidth jump briefly kept pace."""
        from repro.gpu.roofline import machine_balance

        balances = [machine_balance(get_gpu(name))
                    for name in ("t4", "a100", "h100")]
        assert balances == sorted(balances)
        v100 = machine_balance(get_gpu("v100"))
        assert abs(v100 - machine_balance(get_gpu("a100"))) < 15

    def test_recomposition_works_on_every_generation(self):
        from repro.models import InferenceSession

        for name in ("v100", "h100"):
            base = InferenceSession("bert-large", gpu=name,
                                    plan="baseline", seq_len=2048).simulate()
            sdf = InferenceSession("bert-large", gpu=name,
                                   plan="sdf", seq_len=2048).simulate()
            assert sdf.total_time < base.total_time, name
