"""Golden-number regression tests.

The simulator is fully deterministic, so the headline configurations
are pinned to their exact current values (loose 2% bands).  If a
refactor of the cost model moves these, EXPERIMENTS.md and the
calibration discussion must be revisited — this suite makes that
impossible to miss.
"""

import pytest

from repro.models import InferenceSession

# (model, plan) -> (latency seconds, off-chip bytes), A100, L=4096, b=1.
GOLDEN = {
    ("bert-large", "baseline"): (0.076110617, 65_833_795_584),
    ("bert-large", "sdf"): (0.060157396, 42_479_910_912),
    ("gpt-neo-1.3b", "baseline"): (0.162258138, 119_952_900_096),
    ("gpt-neo-1.3b", "sdf"): (0.142142485, 107_563_253_760),
    ("bigbird-large", "baseline"): (0.067084529, 21_944_598_528),
    ("bigbird-large", "sdf"): (0.042450611, 18_478_006_272),
    ("longformer-large", "baseline"): (0.067393871, 22_775_070_720),
    ("longformer-large", "sdf"): (0.043288603, 18_932_170_752),
}


@pytest.mark.parametrize("model,plan", sorted(GOLDEN))
def test_golden_latency_and_traffic(model, plan):
    expected_time, expected_bytes = GOLDEN[(model, plan)]
    result = InferenceSession(model, plan=plan).simulate()
    assert result.total_time == pytest.approx(expected_time, rel=0.02)
    assert result.total_dram_bytes == pytest.approx(expected_bytes, rel=0.02)


def test_simulation_is_deterministic():
    a = InferenceSession("bigbird-large", plan="sdf").simulate()
    b = InferenceSession("bigbird-large", plan="sdf").simulate()
    assert a.total_time == b.total_time
    assert a.total_dram_bytes == b.total_dram_bytes


def test_simulation_is_fast():
    """The simulator itself must stay interactive: a full 24-layer
    model simulates in well under a second."""
    import time

    start = time.perf_counter()
    InferenceSession("bert-large", plan="sdf").simulate()
    assert time.perf_counter() - start < 1.0
