"""Tests for the inference runtime (simulation and numerics)."""

import numpy as np
import pytest

from repro.common import ConfigError, DType
from repro.models import (
    AttentionKind,
    AttentionSpec,
    BERT_LARGE,
    GPT_NEO_1_3B,
    InferenceSession,
    ModelConfig,
)


def tiny_model(kind=AttentionKind.DENSE, layers=2, **spec_kwargs):
    return ModelConfig(
        name="tiny",
        num_layers=layers,
        d_model=64,
        num_heads=4,
        d_ff=128,
        attention=(AttentionSpec(kind=kind, block_size=16, **spec_kwargs),),
    )


class TestSimulation:
    def test_simulate_full_bert(self):
        result = InferenceSession(BERT_LARGE, plan="baseline").simulate()
        assert result.total_time > 0
        assert result.total_dram_bytes > 0
        # 24 layers x (4 FC + 3 SDA + gelu + 2 residual + 2 LN + fc1/fc2).
        assert len(result.profile) == 24 * 14

    def test_string_arguments(self):
        result = InferenceSession("bert-large", gpu="a100",
                                  plan="sdf").simulate()
        assert result.model is BERT_LARGE
        assert result.gpu.name == "A100"

    def test_unique_spec_dedup_matches_full_simulation(self):
        """Replicating per-spec profiles must equal simulating all layers."""
        session = InferenceSession(GPT_NEO_1_3B, plan="baseline",
                                   seq_len=2048)
        result = session.simulate()

        from repro.gpu import Device

        device = Device(session.gpu)
        for layer in range(GPT_NEO_1_3B.num_layers):
            session._make_layer(layer).simulate(device)
        assert device.profile.total_time() == pytest.approx(result.total_time)
        assert device.profile.total_dram_bytes() == pytest.approx(
            result.total_dram_bytes
        )

    def test_breakdown_fractions_sum_to_one(self):
        from repro.analysis import normalized_time_breakdown

        result = InferenceSession(BERT_LARGE).simulate()
        fractions = normalized_time_breakdown(result)
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert fractions["softmax"] > 0.2

    def test_invalid_args(self):
        with pytest.raises(ConfigError):
            InferenceSession(BERT_LARGE, seq_len=0)
        with pytest.raises(ConfigError):
            InferenceSession(BERT_LARGE, batch=0)

    def test_speedup_over(self):
        base = InferenceSession(BERT_LARGE, plan="baseline").simulate()
        sdf = InferenceSession(BERT_LARGE, plan="sdf").simulate()
        assert sdf.speedup_over(base) == pytest.approx(
            base.total_time / sdf.total_time
        )

    def test_batch_scales_traffic(self):
        one = InferenceSession(BERT_LARGE, batch=1).simulate()
        four = InferenceSession(BERT_LARGE, batch=4).simulate()
        assert four.total_dram_bytes > 3.5 * one.total_dram_bytes


class TestNumericForward:
    @pytest.mark.parametrize("plan", ["baseline", "sd", "sdf"])
    def test_plans_produce_identical_hidden_states(self, plan):
        config = tiny_model()
        rng = np.random.default_rng(0)
        hidden = rng.standard_normal((2, 32, 64)).astype(np.float32) * 0.1
        base = InferenceSession(config, seq_len=32, batch=2, t=16,
                                plan="baseline").forward(hidden)
        out = InferenceSession(config, seq_len=32, batch=2, t=16,
                               plan=plan).forward(hidden)
        np.testing.assert_allclose(out, base, atol=5e-3)

    def test_sparse_model_forward(self):
        config = tiny_model(kind=AttentionKind.LONGFORMER, window=32,
                            global_blocks=1)
        rng = np.random.default_rng(1)
        hidden = rng.standard_normal((1, 128, 64)).astype(np.float32) * 0.1
        base = InferenceSession(config, seq_len=128, plan="baseline",
                                t=16).forward(hidden)
        sdf = InferenceSession(config, seq_len=128, plan="sdf",
                               t=16).forward(hidden)
        np.testing.assert_allclose(sdf, base, atol=5e-3)

    def test_forward_with_device_returns_profile(self):
        config = tiny_model()
        hidden = np.zeros((1, 32, 64), dtype=np.float32)
        out, result = InferenceSession(config, seq_len=32).forward(
            hidden, with_device=True
        )
        assert out.shape == (1, 32, 64)
        assert len(result.profile) == config.num_layers * 14

    def test_forward_shape_validation(self):
        config = tiny_model()
        with pytest.raises(ConfigError):
            InferenceSession(config, seq_len=32).forward(
                np.zeros((1, 16, 64), dtype=np.float32)
            )

    def test_output_finite_and_normalized(self):
        """LayerNorm keeps activations bounded through 4 layers."""
        config = tiny_model(layers=4)
        rng = np.random.default_rng(2)
        hidden = rng.standard_normal((1, 32, 64)).astype(np.float32)
        out = InferenceSession(config, seq_len=32).forward(hidden)
        assert np.all(np.isfinite(out))
        assert np.abs(out).max() < 50

    def test_fp32_session(self):
        config = tiny_model()
        rng = np.random.default_rng(3)
        hidden = rng.standard_normal((1, 32, 64)).astype(np.float32) * 0.1
        base = InferenceSession(config, seq_len=32, dtype=DType.FP32, t=16,
                                plan="baseline").forward(hidden)
        sdf = InferenceSession(config, seq_len=32, dtype=DType.FP32, t=16,
                               plan="sdf").forward(hidden)
        np.testing.assert_allclose(sdf, base, atol=1e-5)


class TestPaperHeadlines:
    """The paper's headline A100 results, within tolerance bands."""

    @pytest.mark.parametrize("model,expected,tol", [
        ("bert-large", 1.25, 0.08),
        ("gpt-neo-1.3b", 1.12, 0.08),
        ("bigbird-large", 1.57, 0.15),
        ("longformer-large", 1.65, 0.12),
    ])
    def test_sdf_speedups(self, model, expected, tol):
        base = InferenceSession(model, plan="baseline").simulate()
        sdf = InferenceSession(model, plan="sdf").simulate()
        assert sdf.speedup_over(base) == pytest.approx(expected, rel=tol)

    def test_sd_hurts_dense_helps_sparse(self):
        """Fig. 8: SD alone slows dense models, speeds sparse ones."""
        for model, lo, hi in [("bert-large", 0.75, 1.0),
                              ("bigbird-large", 1.3, 1.7),
                              ("longformer-large", 1.3, 1.7)]:
            base = InferenceSession(model, plan="baseline").simulate()
            sd = InferenceSession(model, plan="sd").simulate()
            assert lo <= sd.speedup_over(base) <= hi, model

    def test_softmax_shares(self):
        """Fig. 2: softmax is 36/18/40/42% of execution time."""
        for model, expected in [("bert-large", 0.36), ("gpt-neo-1.3b", 0.18),
                                ("bigbird-large", 0.40),
                                ("longformer-large", 0.42)]:
            result = InferenceSession(model, plan="baseline").simulate()
            assert result.softmax_time_fraction() == pytest.approx(
                expected, abs=0.07
            ), model

    def test_sdf_reduces_memory_traffic(self):
        for model in ("bert-large", "gpt-neo-1.3b"):
            base = InferenceSession(model, plan="baseline").simulate()
            sdf = InferenceSession(model, plan="sdf").simulate()
            assert sdf.total_dram_bytes < 0.9 * base.total_dram_bytes


class TestLayerGroups:
    def test_bert_single_group(self):
        result = InferenceSession(BERT_LARGE).simulate()
        assert len(result.layer_groups) == 1
        label, count, profile = result.layer_groups[0]
        assert label == "dense"
        assert count == 24
        assert profile.total_time() * 24 == pytest.approx(result.total_time)

    def test_gpt_neo_two_groups(self):
        result = InferenceSession(GPT_NEO_1_3B, seq_len=2048).simulate()
        labels = sorted(label for label, _, _ in result.layer_groups)
        assert labels == ["dense_causal", "local_causal"]
        summary = result.layer_summary()
        assert sum(share for *_, share in summary) == pytest.approx(1.0)
        # Dense-causal layers are the expensive ones (full L^2 attention).
        shares = {label: share for label, _, _, share in summary}
        assert shares["dense_causal"] > shares["local_causal"]
