"""Smoke tests for the simulator self-benchmark."""

import json

import pytest

from repro.analysis.selfperf import run_selfbench
from repro.cli import main as cli_main
from repro.gpu import simcache


@pytest.fixture(autouse=True)
def _fresh_caches():
    simcache.invalidate()
    yield
    simcache.invalidate()


def test_selfbench_smoke():
    report = run_selfbench(repetitions=2, seq_lens=(512, 1024),
                           num_documents=16, max_seq_len=1024)
    assert report.outputs_identical
    assert len(report.workloads) == 2
    names = [w.name for w in report.workloads]
    assert "fig9a-seqlen-sweep" in names
    assert "triviaqa-driver-16doc" in names
    for workload in report.workloads:
        assert workload.baseline_s > 0 and workload.fast_s > 0
    stats = report.cache_stats
    assert stats["simulate"]["hits"] > 0
    assert stats["kernel"]["hit_rate"] > 0


def test_selfbench_json_round_trips():
    report = run_selfbench(repetitions=1, seq_lens=(512,),
                           num_documents=16, max_seq_len=1024)
    payload = json.loads(json.dumps(report.to_json()))
    assert payload["outputs_identical"] is True
    assert payload["repetitions"] == 1
    assert len(payload["workloads"]) == 2
    rendered = report.render()
    assert "outputs identical: True" in rendered


def test_cli_selfbench_writes_json(tmp_path, capsys):
    out = tmp_path / "selfperf.json"
    cli_main(["selfbench", "--repetitions", "1", "--output", str(out)])
    text = capsys.readouterr().out
    assert "speedup" in text
    payload = json.loads(out.read_text())
    assert payload["outputs_identical"] is True


def test_bench_script_main(tmp_path, capsys):
    import importlib.util
    import pathlib

    script = (pathlib.Path(__file__).parent.parent
              / "benchmarks" / "bench_selfperf.py")
    spec = importlib.util.spec_from_file_location("bench_selfperf", script)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    out = tmp_path / "BENCH_selfperf.json"
    assert module.main(["--repetitions", "1", "--output", str(out)]) == 0
    capsys.readouterr()
    assert json.loads(out.read_text())["workloads"]
