"""Tests for block-sparse MatMul and softmax kernels.

Ground truth throughout: the block-sparse pipeline must agree with the
dense pipeline evaluated under the layout's element mask.
"""

import numpy as np
import pytest

from repro.common import DType, ShapeError
from repro.gpu import A100
from repro.kernels.softmax import safe_softmax
from repro.sparse import (
    BlockSparseGS,
    BlockSparseIR,
    BlockSparseLS,
    BlockSparseMatMulDSD,
    BlockSparseMatMulSDD,
    BlockSparseMatrix,
    BlockSparseRowSoftmax,
    FusedBSGSMatMulDSD,
    FusedBSMatMulLSSDD,
    bigbird_layout,
    dense_layout,
    longformer_layout,
    sliding_window_layout,
)


BATCH, D = 2, 16


def make_inputs(layout, seed=0):
    rng = np.random.default_rng(seed)
    L = layout.seq_len
    q = rng.standard_normal((BATCH, L, D)).astype(np.float32)
    k = rng.standard_normal((BATCH, L, D)).astype(np.float32)
    v = rng.standard_normal((BATCH, L, D)).astype(np.float32)
    return q, k, v


def dense_masked_attention(q, k, v, layout, scale=1.0):
    """Reference: dense fp32 attention with -inf outside the layout."""
    scores = np.matmul(q, np.swapaxes(k, 1, 2), dtype=np.float32) * scale
    mask = layout.element_mask()
    scores = np.where(mask, scores, -np.inf)
    return np.matmul(safe_softmax(scores), v, dtype=np.float32)


class TestSDD:
    def test_matches_dense_at_nonzero_blocks(self):
        layout = sliding_window_layout(128, 16, window_blocks=3)
        q, k, _ = make_inputs(layout)
        kernel = BlockSparseMatMulSDD(layout, BATCH, D, dtype=DType.FP32)
        sparse = kernel.compute(q, k).to_dense()
        dense = np.matmul(q, np.swapaxes(k, 1, 2), dtype=np.float32)
        mask = layout.element_mask()
        np.testing.assert_allclose(
            sparse[:, mask], dense[:, mask], rtol=1e-4, atol=1e-5
        )
        assert (sparse[:, ~mask] == 0).all()

    def test_epilogue_receives_layout(self):
        layout = dense_layout(32, 16)
        q, k, _ = make_inputs(layout)
        seen = {}

        def epilogue(scores, lay):
            seen["layout"] = lay
            return scores * 0.5

        kernel = BlockSparseMatMulSDD(
            layout, BATCH, D, dtype=DType.FP32, epilogue=epilogue
        )
        kernel.compute(q, k)
        assert seen["layout"] is layout

    def test_flops_proportional_to_nnz(self):
        sparse = bigbird_layout(4096, 64)
        dense = dense_layout(4096, 64)
        k_sparse = BlockSparseMatMulSDD(sparse, 16, 64)
        k_dense = BlockSparseMatMulSDD(dense, 16, 64)
        assert k_sparse.flops() / k_dense.flops() == pytest.approx(
            sparse.density
        )

    def test_writes_only_nonzero_blocks(self):
        layout = bigbird_layout(4096, 64)
        kernel = BlockSparseMatMulSDD(layout, 16, 64)
        launch = kernel.launch_spec(A100)
        assert launch.dram_write_bytes == 16 * layout.nnz_elements() * 2

    def test_rejects_wrong_operand_shape(self):
        layout = dense_layout(32, 16)
        kernel = BlockSparseMatMulSDD(layout, BATCH, D)
        with pytest.raises(ShapeError):
            kernel.compute(np.zeros((BATCH, 32, D + 1)), np.zeros((BATCH, 32, D)))


class TestDSD:
    def test_matches_dense_masked_matmul(self):
        layout = sliding_window_layout(128, 16, window_blocks=3)
        q, k, v = make_inputs(layout)
        sdd = BlockSparseMatMulSDD(layout, BATCH, D, dtype=DType.FP32)
        dsd = BlockSparseMatMulDSD(layout, BATCH, D, dtype=DType.FP32)
        out = dsd.compute(sdd.compute(q, k), v)
        scores = np.matmul(q, np.swapaxes(k, 1, 2), dtype=np.float32)
        masked = np.where(layout.element_mask(), scores, 0.0)
        np.testing.assert_allclose(out, masked @ v, rtol=1e-4, atol=1e-4)

    def test_load_imbalance_from_layout(self):
        layout = bigbird_layout(4096, 64)
        kernel = BlockSparseMatMulDSD(layout, 16, 64)
        launch = kernel.launch_spec(A100)
        assert launch.shape.mean_work == pytest.approx(layout.mean_row_nnz)
        assert launch.shape.max_work == layout.max_row_nnz

    def test_batch_reduces_imbalance_penalty(self):
        """Fig. 9(b): more thread blocks -> smoother last wave."""
        from repro.gpu.costmodel import time_kernel

        layout = bigbird_layout(4096, 64)
        p1 = time_kernel(
            A100, BlockSparseMatMulDSD(layout, 16, 64).launch_spec(A100)
        ).imbalance_penalty
        p8 = time_kernel(
            A100, BlockSparseMatMulDSD(layout, 128, 64).launch_spec(A100)
        ).imbalance_penalty
        assert p8 < p1

    def test_layout_mismatch_rejected(self):
        layout = dense_layout(32, 16)
        other = sliding_window_layout(32, 16, window_blocks=1)
        kernel = BlockSparseMatMulDSD(layout, BATCH, D)
        s = BlockSparseMatrix(
            other, np.zeros((BATCH, other.nnz_blocks, 16, 16), dtype=np.float32)
        )
        with pytest.raises(ShapeError):
            kernel.compute(s, np.zeros((BATCH, 32, D), dtype=np.float32))


class TestBlockSparseSoftmax:
    @pytest.mark.parametrize("make_layout", [
        lambda: sliding_window_layout(128, 16, window_blocks=3),
        lambda: bigbird_layout(256, 16, window_blocks=3, random_blocks=2,
                               global_blocks=1, seed=3),
        lambda: longformer_layout(256, 16, window=32, global_blocks=1),
    ])
    def test_monolithic_matches_dense_masked(self, make_layout):
        layout = make_layout()
        q, k, _ = make_inputs(layout)
        sdd = BlockSparseMatMulSDD(layout, BATCH, D, dtype=DType.FP32)
        softmax = BlockSparseRowSoftmax(layout, BATCH, dtype=DType.FP32)
        result = softmax.compute(sdd.compute(q, k)).to_dense()

        scores = np.matmul(q, np.swapaxes(k, 1, 2), dtype=np.float32)
        masked = np.where(layout.element_mask(), scores, -np.inf)
        expected = safe_softmax(masked)
        np.testing.assert_allclose(result, expected, atol=1e-5)

    def test_decomposed_matches_monolithic(self):
        layout = bigbird_layout(256, 16, window_blocks=3, random_blocks=2,
                                global_blocks=1, seed=5)
        q, k, _ = make_inputs(layout, seed=5)
        sdd = BlockSparseMatMulSDD(layout, BATCH, D, dtype=DType.FP32)
        s = sdd.compute(q, k)

        mono = BlockSparseRowSoftmax(layout, BATCH, dtype=DType.FP32)
        ls = BlockSparseLS(layout, BATCH, dtype=DType.FP32)
        ir = BlockSparseIR(layout, BATCH)
        gs = BlockSparseGS(layout, BATCH, dtype=DType.FP32)

        x_prime, m_prime, d_prime = ls.compute(s)
        r_prime = ir.compute(m_prime, d_prime)
        decomposed = gs.compute(x_prime, r_prime)
        np.testing.assert_allclose(
            decomposed.to_dense(), mono.compute(s).to_dense(), atol=1e-5
        )

    def test_rows_sum_to_one(self):
        layout = bigbird_layout(256, 16, window_blocks=3, random_blocks=2,
                                global_blocks=1, seed=9)
        q, k, _ = make_inputs(layout, seed=9)
        sdd = BlockSparseMatMulSDD(layout, BATCH, D, dtype=DType.FP32)
        softmax = BlockSparseRowSoftmax(layout, BATCH, dtype=DType.FP32)
        probs = softmax.compute(sdd.compute(q, k)).to_dense()
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0, rtol=1e-5)

    def test_baseline_issue_fraction_scales_with_density(self):
        """Section 5.1: conservative allocation idles warps as density falls."""
        sparse = bigbird_layout(4096, 64)
        spec_sparse = BlockSparseRowSoftmax(sparse, 16).launch_spec(A100)
        spec_dense = BlockSparseRowSoftmax(dense_layout(4096, 64), 16).launch_spec(A100)
        ratio = spec_sparse.issue_fraction / spec_dense.issue_fraction
        assert ratio == pytest.approx(sparse.mean_row_nnz / sparse.n_block_cols,
                                      rel=1e-6)

    def test_ls_traffic_covers_only_nonzeros(self):
        layout = bigbird_layout(4096, 64)
        ls = BlockSparseLS(layout, 16)
        launch = ls.launch_spec(A100)
        nnz_bytes = 16 * layout.nnz_elements() * 2
        assert launch.dram_read_bytes == nnz_bytes

    def test_decomposition_restores_bandwidth(self):
        """The headline Section 5.1 effect, end to end in the model."""
        from repro.gpu.costmodel import time_kernel

        layout = bigbird_layout(4096, 64)
        base = BlockSparseRowSoftmax(layout, 16)
        ls = BlockSparseLS(layout, 16)
        util_base = time_kernel(A100, base.launch_spec(A100)).bandwidth_utilization
        util_ls = time_kernel(A100, ls.launch_spec(A100)).bandwidth_utilization
        assert util_ls > 5 * util_base


class TestFusedBlockSparse:
    def test_fused_pipeline_matches_reference(self):
        layout = bigbird_layout(256, 16, window_blocks=3, random_blocks=2,
                                global_blocks=1, seed=11)
        q, k, v = make_inputs(layout, seed=11)
        scale = 1.0 / np.sqrt(D)

        sdd_ls = FusedBSMatMulLSSDD(
            layout, BATCH, D, dtype=DType.FP32,
            epilogue=lambda s, lay: s * scale,
        )
        ir = BlockSparseIR(layout, BATCH)
        gs_dsd = FusedBSGSMatMulDSD(layout, BATCH, D, dtype=DType.FP32)

        x_prime, m_prime, d_prime = sdd_ls.compute(q, k)
        r_prime = ir.compute(m_prime, d_prime)
        out = gs_dsd.compute(x_prime, r_prime, v)

        expected = dense_masked_attention(q, k, v, layout, scale)
        np.testing.assert_allclose(out, expected, atol=1e-4, rtol=1e-4)

    def test_fusion_removes_softmax_sweeps(self):
        """Fused sparse SDA touches the block data twice (write + read)."""
        layout = bigbird_layout(4096, 64)
        batch = 16
        block_bytes = batch * layout.nnz_elements() * 2

        fused = [
            FusedBSMatMulLSSDD(layout, batch, 64),
            BlockSparseIR(layout, batch),
            FusedBSGSMatMulDSD(layout, batch, 64),
        ]
        unfused = [
            BlockSparseMatMulSDD(layout, batch, 64),
            BlockSparseLS(layout, batch),
            BlockSparseIR(layout, batch),
            BlockSparseGS(layout, batch),
            BlockSparseMatMulDSD(layout, batch, 64),
        ]
        fused_bytes = sum(k.launch_spec(A100).dram_bytes for k in fused)
        unfused_bytes = sum(k.launch_spec(A100).dram_bytes for k in unfused)
        assert unfused_bytes > 5 * block_bytes
        # Fused: block data written once, read once, plus Q/K/V and the
        # 1/T-sized statistics (relatively larger than in the dense
        # case because the block data itself is small).
        assert fused_bytes < 2.7 * block_bytes
        assert fused_bytes < 0.45 * unfused_bytes

    def test_fused_r_prime_shape_validation(self):
        layout = dense_layout(64, 16)
        kernel = FusedBSGSMatMulDSD(layout, BATCH, D)
        x = BlockSparseMatrix(
            layout, np.zeros((BATCH, layout.nnz_blocks, 16, 16), dtype=np.float32)
        )
        with pytest.raises(ShapeError):
            kernel.compute(x, np.zeros((BATCH, 3, 16)), np.zeros((BATCH, 64, D)))


class TestBlockSparseSoftmaxEdgeCases:
    """d' = 0 paths in the block-sparse softmax: rows whose every live
    score is masked to -inf, and block_size=1 layouts where each block
    is a single-element sub-vector."""

    def _decompose(self, layout, s):
        ls = BlockSparseLS(layout, BATCH, dtype=DType.FP32)
        ir = BlockSparseIR(layout, BATCH)
        gs = BlockSparseGS(layout, BATCH, dtype=DType.FP32)
        x_prime, m_prime, d_prime = ls.compute(s)
        return gs.compute(x_prime, ir.compute(m_prime, d_prime))

    def test_all_masked_rows_yield_zeros(self):
        layout = sliding_window_layout(64, 16, window_blocks=3)
        q, k, _ = make_inputs(layout)
        s = BlockSparseMatMulSDD(layout, BATCH, D,
                                 dtype=DType.FP32).compute(q, k)
        data = s.data.copy()
        # Mask every score of element rows 0..15 (block row 0).
        row0 = layout.block_rows == 0
        data[:, row0, :, :] = -np.inf
        masked = BlockSparseMatrix(layout, data)

        mono = BlockSparseRowSoftmax(
            layout, BATCH, dtype=DType.FP32).compute(masked).to_dense(0.0)
        dec = self._decompose(layout, masked).to_dense(0.0)
        for probs in (mono, dec):
            np.testing.assert_array_equal(probs[:, :16, :], 0.0)
            np.testing.assert_allclose(probs[:, 16:, :].sum(axis=-1), 1.0,
                                       rtol=1e-5)
        np.testing.assert_allclose(dec, mono, atol=1e-6)

    def test_partially_masked_row_keeps_live_mass(self):
        """Masking one whole block of a row is an empty sub-vector
        (d'=0 for that block) but must not disturb the rest."""
        layout = sliding_window_layout(64, 16, window_blocks=3)
        q, k, _ = make_inputs(layout, seed=7)
        s = BlockSparseMatMulSDD(layout, BATCH, D,
                                 dtype=DType.FP32).compute(q, k)
        data = s.data.copy()
        # The first stored block of block-row 1 becomes all -inf.
        target = int(np.flatnonzero(layout.block_rows == 1)[0])
        data[:, target, :, :] = -np.inf
        masked = BlockSparseMatrix(layout, data)

        mono = BlockSparseRowSoftmax(
            layout, BATCH, dtype=DType.FP32).compute(masked)
        dec = self._decompose(layout, masked)
        np.testing.assert_array_equal(mono.data[:, target], 0.0)
        np.testing.assert_array_equal(dec.data[:, target], 0.0)
        np.testing.assert_allclose(
            mono.to_dense(0.0).sum(axis=-1)[:, 16:32], 1.0, rtol=1e-5)
        np.testing.assert_allclose(dec.to_dense(0.0), mono.to_dense(0.0),
                                   atol=1e-6)

    def test_block_size_one_single_element_subvectors(self):
        from repro.sparse.layout import BlockSparseLayout

        rng = np.random.default_rng(21)
        mask = rng.random((6, 6)) < 0.5
        np.fill_diagonal(mask, True)
        layout = BlockSparseLayout(mask, 1)
        q, k, _ = make_inputs(layout, seed=21)
        s = BlockSparseMatMulSDD(layout, BATCH, D,
                                 dtype=DType.FP32).compute(q, k)
        data = s.data.copy()
        data[:, 0] = -np.inf  # one single-element sub-vector masked
        masked = BlockSparseMatrix(layout, data)

        mono = BlockSparseRowSoftmax(
            layout, BATCH, dtype=DType.FP32).compute(masked)
        dec = self._decompose(layout, masked)
        np.testing.assert_allclose(dec.to_dense(0.0), mono.to_dense(0.0),
                                   atol=1e-6)
        np.testing.assert_array_equal(mono.data[:, 0], 0.0)

        dense_scores = masked.to_dense(fill=-np.inf)
        expected = safe_softmax(dense_scores)
        np.testing.assert_allclose(mono.to_dense(0.0), expected, atol=1e-5)
