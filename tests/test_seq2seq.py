"""Tests for the encoder-decoder transformer and cross-attention."""

import numpy as np
import pytest

from repro.common import ConfigError, PlanError, ShapeError
from repro.kernels.softmax import safe_softmax
from repro.models import AttentionKind, AttentionSpec, SDABlock
from repro.models.seq2seq import (
    Seq2SeqConfig,
    Seq2SeqSession,
    VANILLA_TRANSFORMER_BASE,
    VANILLA_TRANSFORMER_BIG,
    make_decoder_weights,
)

TINY = Seq2SeqConfig(name="tiny-s2s", num_encoder_layers=1,
                     num_decoder_layers=1, d_model=32, num_heads=2,
                     d_ff=64)


class TestCrossAttentionSDA:
    """Rectangular (L_q x L_kv) attention through SDABlock."""

    def reference(self, q, k, v):
        d = q.shape[-1]
        scores = np.matmul(q, np.swapaxes(k, 1, 2),
                           dtype=np.float32) / np.sqrt(d)
        return np.matmul(safe_softmax(scores), v, dtype=np.float32)

    @pytest.mark.parametrize("plan", ["baseline", "sd", "sdf"])
    def test_rectangular_attention_matches_reference(self, plan):
        rng = np.random.default_rng(0)
        q = rng.standard_normal((4, 32, 16)).astype(np.float32)
        k = rng.standard_normal((4, 64, 16)).astype(np.float32)
        v = rng.standard_normal((4, 64, 16)).astype(np.float32)
        block = SDABlock(batch=2, num_heads=2, seq_len=32, kv_seq_len=64,
                         d_head=16, plan=plan, t=16,
                         spec=AttentionSpec(kind=AttentionKind.DENSE))
        np.testing.assert_allclose(
            block.forward(q, k, v), self.reference(q, k, v), atol=5e-3
        )

    def test_kv_shape_validated(self):
        block = SDABlock(batch=1, num_heads=2, seq_len=32, kv_seq_len=64,
                         d_head=16,
                         spec=AttentionSpec(kind=AttentionKind.DENSE))
        q = np.zeros((2, 32, 16), dtype=np.float32)
        with pytest.raises(ShapeError):
            block.forward(q, q, q)  # K/V must be 64 long

    def test_cross_attention_traffic_rectangular(self):
        from repro.gpu import A100

        block = SDABlock(batch=1, num_heads=16, seq_len=1024,
                         kv_seq_len=4096, d_head=64, plan="baseline",
                         spec=AttentionSpec(kind=AttentionKind.DENSE))
        softmax = block.kernels[1]
        launch = softmax.launch_spec(A100)
        # 16 heads x 1024 query rows, each 4096 long.
        assert launch.dram_read_bytes == 16 * 1024 * 4096 * 2

    def test_sparse_cross_attention_rejected(self):
        with pytest.raises(PlanError, match="cross-attention must be dense"):
            SDABlock(batch=1, num_heads=2, seq_len=128, kv_seq_len=256,
                     d_head=16,
                     spec=AttentionSpec(kind=AttentionKind.BIGBIRD,
                                        block_size=16, global_blocks=1))

    def test_fully_fused_cross_attention_rejected(self):
        with pytest.raises(PlanError, match="cross-attention"):
            SDABlock(batch=1, num_heads=2, seq_len=128, kv_seq_len=256,
                     d_head=16, plan="fused-mha",
                     spec=AttentionSpec(kind=AttentionKind.DENSE))


class TestSeq2SeqConfig:
    def test_vanilla_base(self):
        assert VANILLA_TRANSFORMER_BASE.d_model == 512
        assert VANILLA_TRANSFORMER_BASE.d_head == 64
        assert VANILLA_TRANSFORMER_BIG.d_ff == 4096

    def test_encoder_config_dense(self):
        enc = VANILLA_TRANSFORMER_BASE.encoder_config()
        assert enc.num_layers == 6
        assert not enc.layer_attention(0).is_causal

    def test_decoder_self_config_causal(self):
        dec = VANILLA_TRANSFORMER_BASE.decoder_self_config()
        assert dec.layer_attention(0).is_causal

    def test_validation(self):
        with pytest.raises(Exception):
            Seq2SeqConfig(name="bad", num_encoder_layers=0,
                          num_decoder_layers=1, d_model=64, num_heads=4,
                          d_ff=128)


class TestSeq2SeqSession:
    def test_simulation_counts(self):
        result = Seq2SeqSession(TINY, src_len=4096, tgt_len=2048).simulate()
        # encoder layer: 14 kernels; decoder: self (7+2) + cross (7+2)
        # + ff (3+2) = 23.
        assert len(result.profile) == 1 * 14 + 1 * 23
        assert result.total_time > 0

    def test_recomposition_speeds_up_seq2seq(self):
        base = Seq2SeqSession(VANILLA_TRANSFORMER_BIG, src_len=4096,
                              tgt_len=4096, plan="baseline").simulate()
        sdf = Seq2SeqSession(VANILLA_TRANSFORMER_BIG, src_len=4096,
                             tgt_len=4096, plan="sdf").simulate()
        assert base.total_time / sdf.total_time > 1.15

    def test_numeric_forward_plans_agree(self):
        rng = np.random.default_rng(1)
        src = rng.standard_normal((1, 64, 32)).astype(np.float32) * 0.1
        tgt = rng.standard_normal((1, 32, 32)).astype(np.float32) * 0.1
        out_base = Seq2SeqSession(TINY, src_len=64, tgt_len=32, t=16,
                                  plan="baseline").forward(src, tgt)
        out_sdf = Seq2SeqSession(TINY, src_len=64, tgt_len=32, t=16,
                                 plan="sdf").forward(src, tgt)
        assert out_base.shape == (1, 32, 32)
        np.testing.assert_allclose(out_sdf, out_base, atol=5e-3)

    def test_decoder_attends_to_encoder(self):
        """Changing the source changes the decoder output (via cross
        attention only)."""
        rng = np.random.default_rng(2)
        src1 = rng.standard_normal((1, 32, 32)).astype(np.float32) * 0.1
        src2 = src1 + 0.5
        tgt = rng.standard_normal((1, 32, 32)).astype(np.float32) * 0.1
        session = Seq2SeqSession(TINY, src_len=32, tgt_len=32, t=16)
        out1 = session.forward(src1, tgt)
        out2 = session.forward(src2, tgt)
        assert not np.allclose(out1, out2)

    def test_shape_validation(self):
        session = Seq2SeqSession(TINY, src_len=32, tgt_len=32)
        with pytest.raises(ConfigError):
            session.forward(np.zeros((1, 16, 32), dtype=np.float32),
                            np.zeros((1, 32, 32), dtype=np.float32))

    def test_decoder_weights_deterministic(self):
        a = make_decoder_weights(TINY, 0, seed=5)
        b = make_decoder_weights(TINY, 0, seed=5)
        np.testing.assert_array_equal(a.cross_wq, b.cross_wq)
        assert a.cross_wq.shape == (32, 32)
