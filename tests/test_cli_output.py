"""The unified CLI output contract.

Every subcommand must accept ``--json`` (print a ``repro.result/v1``
document) and ``--output PATH`` (write that document, print the text
plus a confirmation).  The parametrization below is guarded against
drift: a new subcommand that forgets the contract fails
``test_every_subcommand_covered`` until it gets fast arguments here.
"""

import argparse
import json

import pytest

from repro.cli import build_parser, main
from repro.common.results import (
    APPROX_SWEEP_SCHEMA,
    RESULT_SCHEMA,
    TRACE_SCHEMA,
    TUNED_PLAN_SCHEMA,
)

#: Fast invocations, one per subcommand.
FAST_ARGS = {
    "simulate": ["--seq-len", "512"],
    "compare": ["--seq-len", "512"],
    "breakdown": ["--seq-len", "512"],
    "libraries": ["--seq-len", "512"],
    "sweep": ["--values", "512,1024", "--seq-len", "512"],
    "generate": ["--tokens", "4", "--seq-len", "512"],
    "trace": ["--seq-len", "512"],
    "parallel": ["--seq-len", "512"],
    "roofline": ["--seq-len", "512"],
    "footprint": ["--seq-len", "512"],
    "seq2seq": ["--config", "base", "--src-len", "256",
                "--tgt-len", "64"],
    "serve-sim": ["--rate", "2", "--duration", "3"],
    "cluster-sim": ["--rate", "2", "--duration", "3", "--replicas", "2"],
    "controlplane-sim": ["--rate", "2", "--duration", "3",
                         "--replicas", "2"],
    "verify": ["--quick"],
    "approx-sweep": ["--models", "bert-large", "--seq-lens", "256",
                     "--cases", "1"],
    "selfbench": ["--repetitions", "1"],
    "tune": ["--rate", "2", "--duration", "3", "--budget", "6"],
}

#: The discriminator each subcommand's document must carry.
EXPECTED_KIND = {
    "simulate": "inference",
    "compare": "compare",
    "breakdown": "breakdown",
    "libraries": "libraries",
    "sweep": "sweep",
    "generate": "generation",
    "trace": "chrome-trace",
    "parallel": "parallel-scaling",
    "roofline": "roofline",
    "footprint": "footprint",
    "seq2seq": "inference",
    "serve-sim": "serving-report",
    "cluster-sim": "cluster-report",
    "controlplane-sim": "controlplane-report",
    "verify": "reproduction",
    "approx-sweep": "approx-sweep",
    "selfbench": "selfbench",
    "tune": "tuned-plan",
}

#: Schema tag per subcommand; ``trace`` emits the larger
#: ``repro.trace/v1`` documents, ``approx-sweep`` the nested Pareto
#: report, and ``tune`` the tuned-plan artifact, everything else
#: ``repro.result/v1``.
EXPECTED_SCHEMA = {
    command: TRACE_SCHEMA if command == "trace"
    else APPROX_SWEEP_SCHEMA if command == "approx-sweep"
    else TUNED_PLAN_SCHEMA if command == "tune"
    else RESULT_SCHEMA
    for command in EXPECTED_KIND
}


def run_cli(capsys, *argv):
    assert main(list(argv)) == 0
    return capsys.readouterr().out


def subcommands():
    parser = build_parser()
    action = next(a for a in parser._actions
                  if isinstance(a, argparse._SubParsersAction))
    return sorted(action.choices)


class TestOutputContract:
    def test_every_subcommand_covered(self):
        assert set(subcommands()) == set(FAST_ARGS)
        assert set(subcommands()) == set(EXPECTED_KIND)

    @pytest.mark.parametrize("command", sorted(FAST_ARGS))
    def test_json_round_trips(self, capsys, command):
        out = run_cli(capsys, command, *FAST_ARGS[command], "--json")
        document = json.loads(out)
        assert document["schema"] == EXPECTED_SCHEMA[command]
        assert document["kind"] == EXPECTED_KIND[command]

    @pytest.mark.parametrize("command", sorted(FAST_ARGS))
    def test_output_writes_same_document(self, capsys, tmp_path, command):
        path = tmp_path / "result.json"
        text = run_cli(capsys, command, *FAST_ARGS[command],
                       "--output", str(path))
        assert f"wrote {path}" in text
        written = json.loads(path.read_text())
        assert written["schema"] == EXPECTED_SCHEMA[command]
        assert written["kind"] == EXPECTED_KIND[command]

    def test_json_matches_output_file(self, capsys, tmp_path):
        path = tmp_path / "report.json"
        printed = run_cli(capsys, "serve-sim", "--rate", "2",
                          "--duration", "3", "--json")
        run_cli(capsys, "serve-sim", "--rate", "2", "--duration", "3",
                "--output", str(path))
        assert json.loads(printed) == json.loads(path.read_text())

    def test_default_is_text(self, capsys):
        out = run_cli(capsys, "footprint", "--seq-len", "512")
        with pytest.raises(json.JSONDecodeError):
            json.loads(out)

    @pytest.mark.parametrize("sim,extra", [
        ("serving", ()),
        ("cluster", ("--replicas", "2")),
    ])
    def test_trace_sim_round_trips(self, capsys, sim, extra):
        """``repro trace`` on the serving and cluster simulators emits a
        parseable, deterministic Chrome trace whose spans nest."""
        from repro.obs import validate_nesting

        argv = ("trace", "--sim", sim, "--rate", "2", "--duration", "2",
                *extra, "--json")
        out = run_cli(capsys, *argv)
        document = json.loads(out)
        assert document["schema"] == TRACE_SCHEMA
        assert document["kind"] == "chrome-trace"
        assert document["sim"] == sim
        assert document["summary"]["spans"] > 0
        assert validate_nesting(document["traceEvents"]) == []
        assert run_cli(capsys, *argv) == out

class TestSeq2Seq:
    """The encoder-decoder CLI path (``repro seq2seq``)."""

    def test_json_names_the_variant(self, capsys):
        for variant, name in (("base", "Transformer-base"),
                              ("big", "Transformer-big")):
            out = run_cli(capsys, "seq2seq", "--config", variant,
                          "--src-len", "256", "--tgt-len", "64",
                          "--json")
            document = json.loads(out)
            assert document["kind"] == "inference"
            assert document["model"].startswith(name)
            assert document["total_time_s"] > 0
            assert 0 < document["softmax_time_fraction"] < 1

    def test_json_matches_output_file(self, capsys, tmp_path):
        path = tmp_path / "seq2seq.json"
        argv = ("seq2seq", "--config", "base", "--src-len", "256",
                "--tgt-len", "64")
        printed = run_cli(capsys, *argv, "--json")
        run_cli(capsys, *argv, "--output", str(path))
        assert json.loads(printed) == json.loads(path.read_text())


class TestMoESpecDecodeCLI:
    """MoE and speculative-decoding scenarios through the CLI, plus
    their degeneracy guarantees: disabled knobs reproduce the dense
    reports byte-for-byte."""

    BASE = ("serve-sim", "--rate", "2", "--duration", "3",
            "--seed", "0", "--plans", "baseline,sdf")

    def test_moe_flags_reach_the_report(self, capsys):
        out = run_cli(capsys, *self.BASE, "--n-experts", "8",
                      "--top-k", "2", "--json")
        document = json.loads(out)
        assert document["model"] == "BERT-large-8x2moe"
        assert document["plans"]["sdf"]["finished"] > 0

    def test_degenerate_moe_is_byte_identical(self, capsys):
        dense = run_cli(capsys, *self.BASE, "--json")
        moe = run_cli(capsys, *self.BASE, "--n-experts", "1",
                      "--top-k", "1", "--json")
        assert moe == dense

    def test_disabled_speculation_is_byte_identical(self, capsys):
        dense = run_cli(capsys, *self.BASE, "--json")
        spec = run_cli(capsys, *self.BASE, "--draft-len", "8",
                       "--accept-rate", "0.5", "--json")
        # draft_len/accept_rate without --draft-model stay inert.
        assert spec == dense

    def test_speculation_changes_the_schedule(self, capsys):
        dense = json.loads(run_cli(capsys, *self.BASE, "--json"))
        spec = json.loads(run_cli(
            capsys, *self.BASE, "--draft-model", "gpt-neo-1.3b",
            "--accept-rate", "1.0", "--json"))
        for plan in ("baseline", "sdf"):
            assert spec["plans"][plan]["steps"] < \
                dense["plans"][plan]["steps"]
            assert spec["plans"][plan]["generated_tokens"] == \
                dense["plans"][plan]["generated_tokens"]

    def test_cluster_sim_accepts_ep(self, capsys):
        out = run_cli(capsys, "cluster-sim", "--model", "mixtral",
                      "--replicas", "2", "--ep", "4", "--plans", "sdf",
                      "--rate", "2", "--duration", "3", "--json")
        plan = json.loads(out)["plans"]["sdf"]
        assert all(r["n_gpus"] == 4 for r in plan["per_replica"])


class TestPlanFileFlag:
    """``--plan-file`` feeds one tuned-plan artifact to every
    serving-style simulator: the run is pinned to the artifact's
    winning plan and tuned knobs."""

    @pytest.fixture(scope="class")
    def plan_file(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("tuned") / "plan.json"
        assert main(["tune", "--rate", "2", "--duration", "3",
                     "--budget", "6", "--output", str(path)]) == 0
        return path

    def winner(self, plan_file):
        return json.loads(plan_file.read_text())["winner"]["config"]

    @pytest.mark.parametrize("command,extra", [
        ("serve-sim", ()),
        ("cluster-sim", ("--replicas", "2")),
        ("controlplane-sim", ("--replicas", "2")),
    ])
    def test_simulators_accept_plan_file(self, capsys, plan_file,
                                         command, extra):
        out = run_cli(capsys, command, "--rate", "2", "--duration", "3",
                      *extra, "--plan-file", str(plan_file), "--json")
        document = json.loads(out)
        winner = self.winner(plan_file)
        assert list(document["plans"]) == [winner["plan"]]

    def test_plan_file_overrides_plans_flag(self, capsys, plan_file):
        out = run_cli(capsys, "serve-sim", "--rate", "2", "--duration",
                      "3", "--plans", "baseline,sd,sdf",
                      "--plan-file", str(plan_file), "--json")
        winner = self.winner(plan_file)
        assert list(json.loads(out)["plans"]) == [winner["plan"]]

    def test_corrupted_plan_file_raises_typed_error(self, capsys,
                                                    tmp_path):
        from repro.common.errors import ArtifactError

        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ArtifactError):
            main(["serve-sim", "--rate", "2", "--duration", "3",
                  "--plan-file", str(bad), "--json"])


class TestClusterAcceptance:
    def test_cluster_acceptance_invocation(self, capsys):
        """The headline invocation from the cluster docs."""
        argv = ("cluster-sim", "--replicas", "4", "--tp", "2",
                "--policy", "least-outstanding", "--plans", "sdf",
                "--rate", "2", "--duration", "3", "--json")
        out = run_cli(capsys, *argv)
        document = json.loads(out)
        plan = document["plans"]["sdf"]
        assert len(plan["per_replica"]) == 4
        assert all(r["n_gpus"] == 2 for r in plan["per_replica"])
        assert plan["comm_time_s"] > 0
        assert run_cli(capsys, *argv) == out
