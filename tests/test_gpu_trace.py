"""Tests for profile export (Chrome trace, kernel tables, summaries)."""

import json

import pytest

from repro.gpu.trace import summarize, to_chrome_trace, to_kernel_table
from repro.models import BERT_LARGE, InferenceSession


@pytest.fixture(scope="module")
def profile():
    return InferenceSession(BERT_LARGE, seq_len=1024).simulate().profile


class TestChromeTrace:
    def test_valid_json_with_all_kernels(self, profile):
        data = json.loads(to_chrome_trace(profile))
        slices = [e for e in data["traceEvents"] if e["ph"] == "X"]
        assert len(slices) == len(profile)

    def test_slices_are_contiguous(self, profile):
        data = json.loads(to_chrome_trace(profile))
        slices = [e for e in data["traceEvents"] if e["ph"] == "X"]
        cursor = 0.0
        for event in slices:
            assert event["ts"] == pytest.approx(cursor)
            cursor += event["dur"]

    def test_total_duration_matches_profile(self, profile):
        data = json.loads(to_chrome_trace(profile))
        slices = [e for e in data["traceEvents"] if e["ph"] == "X"]
        total_us = sum(e["dur"] for e in slices)
        assert total_us == pytest.approx(profile.total_time() * 1e6)

    def test_args_carry_traffic(self, profile):
        data = json.loads(to_chrome_trace(profile))
        slices = [e for e in data["traceEvents"] if e["ph"] == "X"]
        total = sum(e["args"]["dram_read_bytes"]
                    + e["args"]["dram_write_bytes"] for e in slices)
        assert total == pytest.approx(profile.total_dram_bytes())

    def test_process_name_metadata(self, profile):
        data = json.loads(to_chrome_trace(profile, process_name="sim"))
        meta = [e for e in data["traceEvents"] if e["ph"] == "M"]
        assert meta[0]["args"]["name"] == "sim"


class TestTables:
    def test_kernel_table_rows(self, profile):
        table = to_kernel_table(profile, limit=5)
        lines = table.splitlines()
        assert len(lines) == 7  # header + rule + 5 rows
        assert "bound" in lines[0]

    def test_summary_totals(self, profile):
        text = summarize(profile)
        assert "TOTAL" in text
        assert "softmax" in text
        assert f"{profile.total_time() * 1e3:.2f}" in text
