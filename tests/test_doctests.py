"""Run the doctests embedded in the public API docstrings.

Keeps the documentation honest: every ``>>>`` example in the library
must execute and produce the stated output.
"""

import doctest

import pytest

import repro.analysis.reporting
import repro.core.decomposition
import repro.gpu.specs
import repro.models.generation
import repro.models.runtime
import repro.models.seq2seq
import repro.workloads.triviaqa

MODULES = [
    repro.core.decomposition,
    repro.gpu.specs,
    repro.analysis.reporting,
    repro.workloads.triviaqa,
    repro.models.runtime,
    repro.models.generation,
    repro.models.seq2seq,
]


@pytest.mark.parametrize("module", MODULES,
                         ids=[m.__name__ for m in MODULES])
def test_module_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.attempted > 0, f"{module.__name__} has no doctests"
    assert result.failed == 0, f"{module.__name__}: {result.failed} failures"
