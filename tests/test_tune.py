"""The closed-loop plan autotuner.

Pins the tentpole guarantees of ``repro.tune``:

- **determinism** — same (scenario, objective, budget, seed) => the
  same artifact, byte for byte;
- **never worse than the default** — over a smoke grid of model x
  device scenarios, the tuned winner's score is always at least as
  good as the untuned default's;
- **artifact round trip** — emit -> load -> re-score reproduces the
  recorded winner value exactly; corrupted or version-mismatched
  artifacts raise :class:`~repro.common.errors.ArtifactError`, never a
  bare ``KeyError``;
- **deprecation path** — legacy bare-plan call signatures keep
  working, with a :class:`DeprecationWarning` pointing at
  :class:`~repro.core.plansource.PlanSource`.
"""

import dataclasses
import json
import math

import pytest

from repro.common.errors import ArtifactError, PlanError, TuneError
from repro.common.scenario import ScenarioSpec, WorkloadSpec
from repro.tune import (
    OBJECTIVES,
    TunedPlan,
    build_space,
    canonical_score,
    load_tuned_plan,
    save_tuned_plan,
    score_config,
    tune,
)

#: A scenario small enough for sub-second serving evaluations.
FAST = ScenarioSpec(workload=WorkloadSpec(rate=2.0, duration=3.0))


def fast_spec(**overrides):
    workload = dataclasses.replace(FAST.workload,
                                   **overrides.pop("workload", {}))
    return dataclasses.replace(FAST, workload=workload, **overrides)


class TestSearchSpace:
    def test_serving_plans_match_costmodel_support(self):
        from repro.serving.costmodel import SUPPORTED_PLANS
        from repro.tune.space import SERVING_PLAN_NAMES

        assert tuple(p.value for p in SUPPORTED_PLANS) \
            == SERVING_PLAN_NAMES

    def test_grid_enumeration_is_deterministic(self):
        space = build_space(FAST, "serving")
        assert space.configs() == space.configs()
        assert len(space.configs()) == space.size

    def test_default_config_is_complete(self):
        for mode in ("inference", "serving", "cluster"):
            space = build_space(FAST, mode)
            assert set(space.default) == {n for n, _ in space.axes}

    def test_unknown_mode_rejected(self):
        with pytest.raises(TuneError, match="mode"):
            build_space(FAST, "quantum")


class TestDeterminism:
    def test_same_seed_same_artifact_bytes(self):
        runs = [tune(FAST, objective="ttft_p99", budget=8, seed=0)
                for _ in range(2)]
        payloads = [json.dumps(r.to_dict(), sort_keys=True)
                    for r in runs]
        assert payloads[0] == payloads[1]

    def test_different_seed_samples_differently(self):
        a = tune(FAST, objective="ttft_p99", budget=6, seed=0)
        b = tune(FAST, objective="ttft_p99", budget=6, seed=1)
        assert [e[0] for e in a.evaluations] \
            != [e[0] for e in b.evaluations]

    def test_budget_caps_fresh_evaluations(self):
        result = tune(FAST, objective="ttft_p99", budget=5, seed=0)
        assert result.spent <= 5
        assert len(result.evaluations) == result.spent


class TestNeverWorse:
    """The regression guarantee, over a model x device smoke grid."""

    GRID = [("bert-large", "A100"), ("bert-large", "T4"),
            ("gpt-neo-1.3b", "A100"), ("gpt-neo-1.3b", "T4")]

    @pytest.mark.parametrize("model,gpu", GRID)
    @pytest.mark.parametrize("objective", ["ttft_p99", "throughput"])
    def test_tuned_never_loses_to_default(self, model, gpu, objective):
        spec = fast_spec(model=model, gpu=gpu)
        result = tune(spec, objective=objective, budget=6, seed=0)
        assert canonical_score(objective, result.winner_value) \
            <= canonical_score(objective, result.default_value)

    @pytest.mark.parametrize("model,gpu", GRID[:2])
    def test_latency_objective_never_loses(self, model, gpu):
        spec = fast_spec(model=model, gpu=gpu,
                         workload={"seq_len": 1024})
        result = tune(spec, objective="latency", budget=6, seed=0)
        assert result.winner_value <= result.default_value
        assert result.mode == "inference"

    def test_default_always_scored_at_full_fidelity(self):
        result = tune(FAST, objective="ttft_p99", budget=4, seed=0)
        config, fidelity, value = result.evaluations[0]
        assert config == result.default_config
        assert fidelity == 1.0
        assert value == result.default_value


class TestArtifactRoundTrip:
    def run_and_save(self, tmp_path, **kwargs):
        kwargs.setdefault("objective", "ttft_p99")
        kwargs.setdefault("budget", 6)
        kwargs.setdefault("seed", 0)
        result = tune(FAST, **kwargs)
        path = tmp_path / "plan.json"
        save_tuned_plan(result.to_tuned_plan(), path)
        return result, path

    def test_emit_load_rescore_is_exact(self, tmp_path):
        result, path = self.run_and_save(tmp_path)
        artifact = load_tuned_plan(path)
        assert artifact.winner_config == result.winner_config
        rescored = score_config(
            artifact.scenario_spec(), artifact.winner_config,
            objective=artifact.objective, mode=artifact.mode)
        assert rescored == artifact.winner_value

    def test_load_round_trips_document(self, tmp_path):
        result, path = self.run_and_save(tmp_path)
        artifact = load_tuned_plan(path)
        assert artifact.to_dict() == result.to_dict()

    def test_corrupted_json_raises_artifact_error(self, tmp_path):
        path = tmp_path / "corrupt.json"
        path.write_text('{"schema": "repro.tuned_plan/v1", ')
        with pytest.raises(ArtifactError, match="JSON"):
            load_tuned_plan(path)

    def test_version_mismatch_raises_artifact_error(self, tmp_path):
        result, path = self.run_and_save(tmp_path)
        document = json.loads(path.read_text())
        document["schema"] = "repro.tuned_plan/v999"
        path.write_text(json.dumps(document))
        with pytest.raises(ArtifactError, match="schema mismatch"):
            load_tuned_plan(path)

    def test_missing_field_raises_artifact_error_not_keyerror(
            self, tmp_path):
        result, path = self.run_and_save(tmp_path)
        document = json.loads(path.read_text())
        del document["winner"]
        path.write_text(json.dumps(document))
        with pytest.raises(ArtifactError, match="winner"):
            load_tuned_plan(path)

    def test_missing_file_raises_artifact_error(self, tmp_path):
        with pytest.raises(ArtifactError, match="cannot read"):
            load_tuned_plan(tmp_path / "nope.json")

    def test_wrong_kind_raises_artifact_error(self, tmp_path):
        result, path = self.run_and_save(tmp_path)
        document = json.loads(path.read_text())
        document["kind"] = "serving-report"
        path.write_text(json.dumps(document))
        with pytest.raises(ArtifactError, match="kind"):
            load_tuned_plan(path)

    def test_infeasible_values_serialize_as_null(self):
        result = tune(FAST, objective="ttft_p99", budget=4, seed=0)
        plan = dataclasses.replace(
            result, winner_value=math.inf).to_tuned_plan()
        assert plan.winner_value is None
        assert json.dumps(plan.to_dict())  # still JSON-serializable


class TestPlanSourceIntegration:
    def test_plan_source_resolves_artifact_winner(self, tmp_path):
        from repro.core.plan import AttentionPlan
        from repro.core.plansource import PlanSource

        result = tune(FAST, objective="ttft_p99", budget=6, seed=0)
        path = tmp_path / "plan.json"
        save_tuned_plan(result.to_tuned_plan(), path)
        source = PlanSource.of(str(path))
        assert source.resolve() \
            == AttentionPlan.from_name(result.winner_config["plan"])

    def test_tune_refuses_plan_file_scenarios(self, tmp_path):
        spec = dataclasses.replace(FAST, plan_file="whatever.json")
        with pytest.raises(TuneError, match="plan-file"):
            tune(spec, objective="ttft_p99", budget=4)

    def test_budget_below_two_rejected(self):
        with pytest.raises(TuneError, match="budget"):
            tune(FAST, objective="ttft_p99", budget=1)

    def test_unknown_objective_rejected(self):
        assert "p50" not in OBJECTIVES
        with pytest.raises(TuneError, match="objective"):
            tune(FAST, objective="ttft_p50", budget=4)


class TestDeprecatedPlanArguments:
    """Legacy bare plan= spellings keep working, with a warning."""

    def test_serving_simulator_warns_on_bare_plan(self):
        from repro.serving.requests import Request
        from repro.serving.simulator import ServingSimulator

        requests = [Request(request_id=0, arrival_time=0.0,
                            prompt_len=128, output_len=2)]
        with pytest.warns(DeprecationWarning, match="PlanSource") as record:
            sim = ServingSimulator("bert-large", "A100", plan="sdf",
                                   requests=requests)
        # The warning must point at the *caller's* line (this file),
        # not at plansource.py internals — the stacklevel walks out of
        # repro.core frames before attributing the warning.
        assert record[0].filename.endswith("test_tune.py")
        assert sim.plan.value == "sdf"
        assert sim.run().finished == 1

    def test_dataset_benchmark_warns_on_bare_plan(self):
        from repro.workloads.driver import DatasetBenchmark
        from repro.workloads.triviaqa import SyntheticTriviaQA

        dataset = SyntheticTriviaQA(num_documents=4, seed=0)
        with pytest.warns(DeprecationWarning, match="PlanSource"):
            DatasetBenchmark(dataset, "bert-large", plan="sdf",
                             max_seq_len=512, bucket=512)

    def test_plan_source_spelling_does_not_warn(self, recwarn):
        import warnings

        from repro.core.plansource import PlanSource
        from repro.serving.requests import Request
        from repro.serving.simulator import ServingSimulator

        requests = [Request(request_id=0, arrival_time=0.0,
                            prompt_len=128, output_len=2)]
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            ServingSimulator("bert-large", "A100",
                             plan=PlanSource.of("sdf"),
                             requests=requests)

    def test_infeasible_sentinel_has_no_truth_value(self):
        from repro.core.autotune import INFEASIBLE

        with pytest.raises(PlanError):
            bool(INFEASIBLE)
        assert repr(INFEASIBLE) == "INFEASIBLE"
