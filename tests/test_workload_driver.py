"""Tests for the bucketed dataset latency driver."""

import pytest

from repro.common import ShapeError
from repro.common.errors import MetricsError
from repro.core.plan import AttentionPlan
from repro.gpu.specs import get_gpu
from repro.models.config import get_model
from repro.workloads import SyntheticTriviaQA
from repro.workloads.driver import DatasetBenchmark, DatasetLatencyReport


@pytest.fixture(scope="module")
def dataset():
    return SyntheticTriviaQA(num_documents=64, seed=3)


@pytest.fixture(scope="module")
def bert_report(dataset):
    return DatasetBenchmark(dataset, "bert-large", max_seq_len=4096,
                            bucket=512).run()


class TestDriver:
    def test_all_documents_accounted(self, dataset, bert_report):
        assert bert_report.num_documents == 64

    def test_buckets_are_multiples(self, bert_report):
        for length in bert_report.histogram:
            assert length % 512 == 0
            assert 512 <= length <= 4096

    def test_long_documents_truncate_to_max(self, dataset, bert_report):
        n_long = int((dataset.lengths() > 4096).sum())
        assert bert_report.histogram.get(4096, 0) >= n_long

    def test_latency_monotone_in_bucket(self, bert_report):
        lengths = sorted(bert_report.bucket_latency)
        latencies = [bert_report.bucket_latency[length] for length in lengths]
        assert latencies == sorted(latencies)

    def test_aggregates_consistent(self, bert_report):
        assert bert_report.mean_latency == pytest.approx(
            bert_report.total_time / 64
        )
        assert bert_report.throughput == pytest.approx(
            64 / bert_report.total_time
        )
        p50 = bert_report.percentile_latency(50)
        p95 = bert_report.percentile_latency(95)
        assert p50 <= p95

    def test_recomposition_improves_corpus_mean(self, dataset):
        base = DatasetBenchmark(dataset, "bert-large", plan="baseline").run()
        sdf = DatasetBenchmark(dataset, "bert-large", plan="sdf").run()
        assert base.mean_latency / sdf.mean_latency > 1.1

    def test_sparse_model_buckets(self, dataset):
        report = DatasetBenchmark(dataset, "longformer-large",
                                  max_seq_len=4096, bucket=1024).run()
        assert report.num_documents == 64
        assert all(length % 1024 == 0 for length in report.histogram)

    def test_bucket_must_divide_block(self, dataset):
        with pytest.raises(ShapeError):
            DatasetBenchmark(dataset, "bert-large", bucket=100)

    def test_max_len_must_divide_bucket(self, dataset):
        with pytest.raises(ShapeError):
            DatasetBenchmark(dataset, "bert-large", max_seq_len=4000,
                             bucket=512)

    def test_bucketing_saves_vs_fixed_padding(self, dataset):
        """Dynamic buckets beat padding everything to max_seq_len."""
        bucketed = DatasetBenchmark(dataset, "bert-large", bucket=512).run()
        fixed = DatasetBenchmark(dataset, "bert-large", bucket=4096).run()
        assert bucketed.total_time < fixed.total_time


class TestEmptyCorpus:
    """An empty corpus must yield all-zero aggregates, not crashes —
    the same convention as ``LatencyStats.from_values([])``."""

    @pytest.fixture()
    def empty_report(self):
        return DatasetLatencyReport(
            model=get_model("bert-large"), gpu=get_gpu("A100"),
            plan=AttentionPlan.BASELINE, max_seq_len=4096, bucket=512,
        )

    def test_all_zero_aggregates(self, empty_report):
        assert empty_report.num_documents == 0
        assert empty_report.total_time == 0.0
        assert empty_report.mean_latency == 0.0
        assert empty_report.throughput == 0.0
        assert empty_report.percentile_latency(50) == 0.0
        assert empty_report.percentile_latency(99) == 0.0

    @pytest.mark.parametrize("q", [-1, 100.5, 1e6])
    def test_out_of_range_percentile_rejected(self, empty_report, q):
        with pytest.raises(MetricsError):
            empty_report.percentile_latency(q)

    def test_percentile_matches_serving_metrics(self, bert_report):
        """The driver's percentile is the serving layer's percentile."""
        from repro.serving.metrics import percentile

        latencies = [
            bert_report.bucket_latency[length]
            for length in sorted(bert_report.histogram)
            for _ in range(bert_report.histogram[length])
        ]
        assert bert_report.percentile_latency(95) == percentile(
            latencies, 95)
