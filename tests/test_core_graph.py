"""Tests for the kernel-graph IR and the recomposition passes."""

import pytest

from repro.common import PlanError
from repro.core import (
    AttentionPlan,
    KernelGraph,
    build_dense_sda_graph,
    decompose_softmax_pass,
    fuse_softmax_pass,
    recompose,
)
from repro.gpu import Device
from repro.kernels import (
    FusedGSMatMulKernel,
    FusedMatMulLSKernel,
    GlobalScaleKernel,
    InterReductionKernel,
    LocalSoftmaxKernel,
    MatMulKernel,
)
from repro.kernels.softmax import OnlineRowSoftmaxKernel
from repro.models import AttentionKind, AttentionSpec, SDABlock

BH, L, D, T = 16, 4096, 64, 64


class TestGraphBasics:
    def test_build_and_query(self):
        graph = build_dense_sda_graph(BH, L, D)
        assert len(graph) == 3
        assert graph.inputs() == ("Q", "K_T", "V")
        assert graph.outputs() == ("O",)
        assert graph.producer("X").kernel.name == "sda_qk_matmul"
        assert [n.kernel.name for n in graph.consumers("X")] == ["softmax"]

    def test_access_count_is_fig6_audit(self):
        graph = build_dense_sda_graph(BH, L, D)
        # Attention matrix: X written + read, Y written + read = 4.
        assert graph.access_count("X") + graph.access_count("Y") == 4

    def test_validate_rejects_use_before_def(self):
        graph = KernelGraph()
        kernel = MatMulKernel(batch=1, m=8, n=8, k=8)
        graph.add_node(kernel, inputs=("a", "b"), outputs=("c",))
        # Manually break the order.
        graph._nodes.insert(
            0, graph._nodes.pop()
        )  # single node, no-op; now add one reading an undefined output
        graph.add_node(MatMulKernel(batch=1, m=8, n=8, k=8),
                       inputs=("c", "d"), outputs=("e",))
        graph._nodes.reverse()
        with pytest.raises(PlanError, match="before production"):
            graph.validate()

    def test_double_producer_rejected(self):
        graph = KernelGraph()
        graph.add_node(MatMulKernel(batch=1, m=8, n=8, k=8),
                       inputs=("a", "b"), outputs=("c",))
        with pytest.raises(PlanError, match="already has a producer"):
            graph.add_node(MatMulKernel(batch=1, m=8, n=8, k=8),
                           inputs=("a", "b"), outputs=("c",))

    def test_buffer_size_conflict_rejected(self):
        graph = KernelGraph()
        graph.add_buffer("x", 100)
        graph.add_buffer("x", 100)  # idempotent OK
        with pytest.raises(PlanError, match="redeclared"):
            graph.add_buffer("x", 200)

    def test_simulate_launches_all_nodes(self):
        graph = build_dense_sda_graph(BH, L, D)
        device = Device("A100")
        graph.simulate(device)
        assert len(device.profile) == 3


class TestDecomposePass:
    def test_rewrites_softmax_node(self):
        graph = build_dense_sda_graph(BH, L, D)
        assert decompose_softmax_pass(graph, T) == 1
        kinds = [type(node.kernel) for node in graph.nodes]
        assert kinds == [MatMulKernel, LocalSoftmaxKernel,
                         InterReductionKernel, GlobalScaleKernel,
                         MatMulKernel]

    def test_stat_buffers_created(self):
        graph = build_dense_sda_graph(BH, L, D)
        decompose_softmax_pass(graph, T)
        for name in ("X.x_prime", "X.m_prime", "X.d_prime", "X.r_prime"):
            assert name in graph.buffers
        assert graph.buffers["X.m_prime"].nbytes == BH * L * (L // T) * 4

    def test_decomposition_increases_matrix_accesses(self):
        """SD: 4 -> 6 matrix-sized accesses (X, X', Y edges)."""
        graph = build_dense_sda_graph(BH, L, D)
        decompose_softmax_pass(graph, T)
        accesses = (graph.access_count("X") + graph.access_count("X.x_prime")
                    + graph.access_count("Y"))
        assert accesses == 6

    def test_online_softmax_not_decomposed(self):
        graph = KernelGraph()
        graph.add_node(
            OnlineRowSoftmaxKernel(rows=BH * L, length=L),
            inputs=("X",), outputs=("Y",),
        )
        assert decompose_softmax_pass(graph, T) == 0

    def test_indivisible_t_rejected(self):
        graph = build_dense_sda_graph(BH, L, D)
        with pytest.raises(PlanError, match="not divisible"):
            decompose_softmax_pass(graph, 100)


class TestFusePass:
    def test_full_recomposition_structure(self):
        graph = recompose(build_dense_sda_graph(BH, L, D), t=T)
        kinds = [type(node.kernel) for node in graph.nodes]
        assert kinds == [FusedMatMulLSKernel, InterReductionKernel,
                         FusedGSMatMulKernel]
        # The raw matrix X and the softmax output Y are fused away:
        # only X' crosses DRAM, written once and read once (Fig. 6).
        assert graph.access_count("X") == 0
        assert graph.access_count("Y") == 0
        assert graph.access_count("X.x_prime") == 2

    def test_recompose_requires_softmax(self):
        graph = KernelGraph()
        graph.add_node(MatMulKernel(batch=1, m=64, n=64, k=64),
                       inputs=("a", "b"), outputs=("c",))
        with pytest.raises(PlanError, match="no softmax"):
            recompose(graph, t=16)

    def test_fusion_skipped_when_x_has_other_consumers(self):
        """If the raw attention matrix is consumed elsewhere (e.g. for
        attention-weight extraction), the MatMul+LS fusion must not
        eliminate it."""
        graph = build_dense_sda_graph(BH, L, D)
        # A side consumer of X (an elementwise pass reading it).
        from repro.kernels.elementwise import ScaleMaskKernel

        graph.add_node(ScaleMaskKernel(BH * L * L, scale=1.0),
                       inputs=("X",), outputs=("X_copy",))
        decompose_softmax_pass(graph, T)
        fused = fuse_softmax_pass(graph)
        # Only the GS-side fusion applies.
        assert fused == 1
        assert graph.access_count("X") >= 2

    def test_graph_traffic_matches_sda_block_pipeline(self):
        """The pass-built graph and the hand-built SDABlock RECOMPOSED
        pipeline must be launch-for-launch identical in cost."""
        graph = recompose(build_dense_sda_graph(BH, L, D), t=T)
        device_graph = Device("A100")
        graph.simulate(device_graph)

        block = SDABlock(batch=1, num_heads=BH, seq_len=L, d_head=D,
                         spec=AttentionSpec(kind=AttentionKind.DENSE),
                         plan=AttentionPlan.RECOMPOSED, t=T)
        device_block = Device("A100")
        block.simulate(device_block)

        g = device_graph.profile
        b = device_block.profile
        assert len(g) == len(b)
        # The graph's plain QK MatMul has no scale/mask epilogue flops,
        # so compare traffic exactly and time approximately.
        assert g.total_dram_bytes() == pytest.approx(b.total_dram_bytes())
        assert g.total_time() == pytest.approx(b.total_time(), rel=0.05)

    def test_baseline_vs_recomposed_traffic_halved(self):
        baseline = build_dense_sda_graph(BH, L, D)
        recomposed = recompose(build_dense_sda_graph(BH, L, D), t=T)
        d1, d2 = Device("A100"), Device("A100")
        baseline.simulate(d1)
        recomposed.simulate(d2)
        assert d2.profile.total_dram_bytes() < 0.6 * d1.profile.total_dram_bytes()


class TestSparseGraphRecomposition:
    """The graph passes handle block-sparse pipelines too."""

    def make_graph(self):
        from repro.core import build_sparse_sda_graph
        from repro.sparse import bigbird_layout

        layout = bigbird_layout(4096, 64)
        return build_sparse_sda_graph(layout, BH, D), layout

    def test_baseline_structure(self):
        graph, _ = self.make_graph()
        assert len(graph) == 3
        assert graph.access_count("X") + graph.access_count("Y") == 4

    def test_full_recomposition(self):
        from repro.sparse.bsmatmul import (
            FusedBSGSMatMulDSD,
            FusedBSMatMulLSSDD,
        )
        from repro.sparse.bssoftmax import BlockSparseIR

        graph, _ = self.make_graph()
        recompose(graph, t=T)
        kinds = [type(node.kernel) for node in graph.nodes]
        assert kinds == [FusedBSMatMulLSSDD, BlockSparseIR,
                         FusedBSGSMatMulDSD]
        assert graph.access_count("X.x_prime") == 2
        assert graph.access_count("X") == 0

    def test_matches_sda_block_pipeline(self):
        graph, layout = self.make_graph()
        recompose(graph, t=T)
        device_graph = Device("A100")
        graph.simulate(device_graph)

        block = SDABlock(
            batch=1, num_heads=BH, seq_len=4096, d_head=D,
            spec=AttentionSpec(kind=AttentionKind.BIGBIRD),
            plan="sdf",
        )
        device_block = Device("A100")
        block.simulate(device_block)
        # Graph omits the scale/mask epilogue flops; traffic matches.
        assert device_graph.profile.total_dram_bytes() == pytest.approx(
            device_block.profile.total_dram_bytes()
        )

    def test_traffic_reduced(self):
        graph, _ = self.make_graph()
        baseline, _ = self.make_graph()
        recompose(graph, t=T)
        d1, d2 = Device("A100"), Device("A100")
        baseline.simulate(d1)
        graph.simulate(d2)
        assert (d2.profile.total_dram_bytes()
                < 0.75 * d1.profile.total_dram_bytes())
