"""Public-API surface tests: everything advertised is importable."""

import importlib

import pytest

import repro


class TestPublicAPI:
    def test_top_level_all_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize("module_name", [
        "repro.common", "repro.gpu", "repro.kernels", "repro.sparse",
        "repro.core", "repro.models", "repro.baselines", "repro.workloads",
        "repro.analysis",
    ])
    def test_subpackage_all_resolves(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.{name}"

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize("module_name", [
        "repro.gpu.roofline", "repro.gpu.trace", "repro.gpu.interconnect",
        "repro.core.autotune", "repro.core.graph", "repro.core.recompose",
        "repro.kernels.flash", "repro.kernels.mha_fused",
        "repro.kernels.backward", "repro.sparse.bsflash",
        "repro.models.generation", "repro.models.training",
        "repro.models.parallel", "repro.models.footprint",
        "repro.models.seq2seq", "repro.models.serialization",
        "repro.workloads.driver", "repro.workloads.genomics",
        "repro.analysis.numerics", "repro.analysis.verification",
        "repro.cli",
    ])
    def test_extension_modules_import(self, module_name):
        importlib.import_module(module_name)

    def test_every_public_item_has_docstring(self):
        """The documentation contract: all advertised objects carry
        docstrings."""
        missing = [
            name for name in repro.__all__
            if not name.startswith("__")
            and getattr(repro, name).__doc__ in (None, "")
            and not isinstance(getattr(repro, name), (int, float, str))
            and type(getattr(repro, name)).__name__ != "GPUSpec"
        ]
        assert not missing, missing
