"""Tests for automatic plan selection."""

import pytest

from repro.common import PlanError
from repro.core import AttentionPlan
from repro.core.autotune import (
    ALL_CANDIDATES,
    INFEASIBLE,
    PAPER_CANDIDATES,
    select_plan,
)
from repro.models import BERT_LARGE, BIGBIRD_LARGE, InferenceSession


class TestSelectPlan:
    def test_picks_sdf_among_paper_plans(self):
        """SDF is the fastest of the paper's plans at paper scale."""
        choice = select_plan(BERT_LARGE, seq_len=4096)
        assert choice.plan is AttentionPlan.RECOMPOSED
        assert choice.speedup_over(AttentionPlan.BASELINE) > 1.1

    def test_all_candidates_picks_flash_at_long_length(self):
        choice = select_plan(BERT_LARGE, seq_len=4096,
                             candidates=ALL_CANDIDATES)
        assert choice.plan is AttentionPlan.FLASH
        # Turbo and fully fused are infeasible at this length.
        assert choice.latencies[AttentionPlan.TURBO] is INFEASIBLE
        assert choice.latencies[AttentionPlan.FULLY_FUSED] is INFEASIBLE

    def test_fully_fused_wins_at_short_length(self):
        choice = select_plan(BERT_LARGE, seq_len=256,
                             candidates=ALL_CANDIDATES)
        assert choice.plan in (AttentionPlan.FULLY_FUSED,
                               AttentionPlan.FLASH)
        assert choice.latencies[AttentionPlan.FULLY_FUSED] is not INFEASIBLE

    def test_sparse_model_skips_dense_only_plans(self):
        choice = select_plan(BIGBIRD_LARGE, seq_len=4096,
                             candidates=ALL_CANDIDATES)
        assert choice.latencies[AttentionPlan.ONLINE] is INFEASIBLE
        assert choice.plan in (AttentionPlan.RECOMPOSED, AttentionPlan.FLASH)

    def test_feasible_subset(self):
        choice = select_plan(BERT_LARGE, seq_len=4096,
                             candidates=ALL_CANDIDATES)
        assert set(choice.feasible) == {
            AttentionPlan.BASELINE, AttentionPlan.DECOMPOSED,
            AttentionPlan.RECOMPOSED, AttentionPlan.ONLINE,
            AttentionPlan.FLASH,
        }

    def test_no_feasible_plan_raises(self):
        with pytest.raises(PlanError, match="no candidate plan"):
            select_plan(BIGBIRD_LARGE, seq_len=4096,
                        candidates=(AttentionPlan.TURBO,))


class TestAutoSession:
    def test_auto_plan_session(self):
        session = InferenceSession(BERT_LARGE, plan="auto", seq_len=4096)
        assert session.plan is AttentionPlan.RECOMPOSED
        result = session.simulate()
        baseline = InferenceSession(BERT_LARGE, plan="baseline",
                                    seq_len=4096).simulate()
        assert result.total_time < baseline.total_time

    def test_auto_never_slower_than_any_paper_plan(self):
        auto = InferenceSession(BIGBIRD_LARGE, plan="auto").simulate()
        for plan in PAPER_CANDIDATES:
            other = InferenceSession(BIGBIRD_LARGE, plan=plan).simulate()
            assert auto.total_time <= other.total_time * 1.001
