"""Tests for breakdown analysis and text reporting."""

import pytest

from repro.analysis import (
    normalized_time_breakdown,
    normalized_traffic_breakdown,
    plan_comparison,
    render_bar_chart,
    render_stacked_bars,
    render_table,
)
from repro.models import BERT_LARGE, InferenceSession


@pytest.fixture(scope="module")
def bert_result():
    return InferenceSession(BERT_LARGE, plan="baseline").simulate()


class TestBreakdowns:
    def test_time_breakdown_complete(self, bert_result):
        fractions = normalized_time_breakdown(bert_result)
        assert set(fractions) == {"matmul", "softmax", "fc", "feedforward",
                                  "other"}
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_traffic_breakdown_softmax_dominates_dense(self, bert_result):
        fractions = normalized_traffic_breakdown(bert_result)
        assert sum(fractions.values()) == pytest.approx(1.0)
        # Softmax sweeps the attention matrix twice; SDA MatMul also
        # touches it.  Together they dominate traffic at L=4096.
        assert fractions["softmax"] + fractions["matmul"] > 0.7

    def test_plan_comparison(self):
        comparison = plan_comparison(BERT_LARGE, plans=("sd", "sdf"))
        assert comparison.model_name == "BERT-large"
        assert comparison.speedup("sdf") > 1.1
        assert comparison.normalized_time("sdf") < 0.9
        assert comparison.normalized_traffic("sd") > 1.0
        assert comparison.normalized_traffic("sdf") < 1.0


class TestRendering:
    def test_table_alignment(self):
        text = render_table(["model", "speedup"],
                            [["BERT", 1.25], ["BigBird", 1.57]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("model")
        assert "1.57" in lines[3]

    def test_bar_chart(self):
        text = render_bar_chart({"baseline": 2.0, "sdf": 1.0}, unit="ms")
        lines = text.splitlines()
        assert len(lines) == 2
        assert lines[0].count("#") == 2 * lines[1].count("#")

    def test_bar_chart_empty(self):
        assert render_bar_chart({}) == "(empty)"

    def test_stacked_bars(self):
        text = render_stacked_bars({
            "BERT": {"softmax": 0.4, "matmul": 0.6},
            "BigBird": {"softmax": 0.5, "matmul": 0.5},
        })
        lines = text.splitlines()
        assert lines[0].startswith("legend:")
        assert len(lines) == 3
        assert "|" in lines[1]

    def test_stacked_bars_zero_total(self):
        text = render_stacked_bars({"x": {"a": 0.0}})
        assert "x" in text
